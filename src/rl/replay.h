#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace lpa::rl {

/// \brief One experience-replay transition (s, a, r, s').
struct Transition {
  std::vector<double> state_enc;
  int action_id = -1;
  double reward = 0.0;
  std::vector<double> next_enc;
  /// Legal action ids at s' (needed for max_a' Q(s', a')).
  std::vector<int> next_legal;
};

/// \brief Fixed-capacity ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity) : capacity_(capacity) {}

  void Add(Transition t);
  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }

  /// \brief Sample `count` transitions uniformly with replacement.
  std::vector<const Transition*> Sample(size_t count, Rng* rng) const;

  /// \brief Direct access for tests (index is storage order, not age order).
  const Transition& at(size_t i) const { return buffer_[i]; }

 private:
  size_t capacity_;
  size_t next_ = 0;
  std::vector<Transition> buffer_;
};

/// \brief Bounded single-producer/single-consumer transition ring.
///
/// One actor slot owns the producer side, the learner owns the consumer
/// side; within the shard the hand-off is lock-free (two atomic cursors with
/// acquire/release ordering, no mutex, no CAS loop). TryPush publishes the
/// slot write before the tail advance; TryPop consumes it before the head
/// advance — the classic SPSC contract, TSan-clean by construction.
class ReplayShard {
 public:
  explicit ReplayShard(size_t capacity) : slots_(capacity) {}

  ReplayShard(const ReplayShard&) = delete;
  ReplayShard& operator=(const ReplayShard&) = delete;

  /// \brief Producer side: false when the ring is full.
  bool TryPush(Transition t);
  /// \brief Producer side: spin-yield until space frees up (backpressure
  /// against a slow learner; the stalled time shows up as lost actor
  /// utilization, not as a deadlock — the learner always drains).
  void Push(Transition t);

  /// \brief Consumer side: false when the ring is empty.
  bool TryPop(Transition* out);

  /// \brief Queue depth. Exact only for the owning side or when producer and
  /// consumer are externally synchronized (e.g. at a round barrier).
  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }
  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Transition> slots_;
  std::atomic<uint64_t> head_{0};  ///< consumer cursor (next pop)
  std::atomic<uint64_t> tail_{0};  ///< producer cursor (next push)
};

/// \brief Sharded replay staging area: one SPSC `ReplayShard` per logical
/// actor slot. Actors push into their own shard without ever contending with
/// each other; the learner drains the shards into its central `ReplayBuffer`.
///
/// Determinism contract: `DrainOrdered` empties the shards in slot order
/// 0..N-1, each shard FIFO — with the fixed actor→slot mapping of the
/// deterministic training mode this makes the merged transition sequence (and
/// therefore every downstream minibatch draw) independent of how many threads
/// executed the actors. `DrainAvailable` (fast mode) takes whatever is
/// visible without a barrier and guarantees nothing about order.
class ShardedReplayBuffer {
 public:
  ShardedReplayBuffer(int num_shards, size_t shard_capacity);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  ReplayShard* shard(int slot) { return shards_[static_cast<size_t>(slot)].get(); }

  /// \brief Producer entry: push into `slot`'s shard (blocks when full).
  void Push(int slot, Transition t) {
    shards_[static_cast<size_t>(slot)]->Push(std::move(t));
  }

  /// \brief Drain every shard to empty, slot order 0..N-1, FIFO within a
  /// shard. Caller must guarantee no concurrent producers (round barrier).
  /// Returns the number of transitions delivered to `sink`.
  size_t DrainOrdered(const std::function<void(Transition&&)>& sink);

  /// \brief Drain whatever each shard exposes right now, slot order, FIFO
  /// within a shard; safe with live producers. Returns transitions delivered.
  size_t DrainAvailable(const std::function<void(Transition&&)>& sink);

  /// \brief Sum of current shard depths (approximate under concurrency).
  size_t TotalSize() const;

  /// \brief Record every shard's current depth into the
  /// `rl.replay_shard_depth` telemetry histogram.
  void ObserveDepths() const;

 private:
  std::vector<std::unique_ptr<ReplayShard>> shards_;
};

}  // namespace lpa::rl
