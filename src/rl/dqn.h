#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "nn/mlp.h"
#include "partition/actions.h"
#include "partition/featurizer.h"
#include "rl/replay.h"
#include "util/rng.h"

namespace lpa::rl {

/// \brief How the Q-function consumes actions.
enum class QNetworkMode {
  /// One output head per (global) action id; one forward pass scores every
  /// action of a state. Mathematically the same function family as the
  /// paper's formulation but far cheaper to train; the repo default.
  kMultiHead,
  /// The paper's Fig 2 formulation: the network takes the concatenated
  /// state-action encoding and emits a single Q-value. Kept for fidelity and
  /// for the ablation bench.
  kStateActionInput,
};

/// \brief DQN hyperparameters; defaults reproduce the paper's Table 1.
struct DqnConfig {
  double learning_rate = 5e-4;
  double tau = 1e-3;             ///< target-network soft-update rate
  int replay_capacity = 10'000;  ///< experience replay buffer size
  int batch_size = 32;
  double epsilon_start = 1.0;
  double epsilon_decay = 0.997;  ///< multiplied in after every episode
  double epsilon_min = 0.01;
  int tmax = 100;                ///< steps per episode (>= |T| required)
  int episodes = 600;            ///< 600 for SSB, 1200 for TPC-DS / TPC-CH
  double gamma = 0.99;           ///< reward discount
  std::vector<int> hidden = {128, 64};
  QNetworkMode mode = QNetworkMode::kMultiHead;
  uint64_t seed = 42;

  /// \brief The exact Table 1 configuration.
  static DqnConfig PaperDefaults() { return DqnConfig{}; }

  /// \brief Refit the ε schedule so exploration anneals to `final_epsilon`
  /// after `fraction` of `episodes`. Table 1's decay of 0.997 is tuned for
  /// 600-1200 episodes; shorter (scaled-down) runs need a faster schedule or
  /// they never exploit.
  void FitEpsilonSchedule(int episodes, double final_epsilon = 0.05,
                          double fraction = 0.8) {
    int horizon = std::max(1, static_cast<int>(episodes * fraction));
    epsilon_decay = std::pow(final_epsilon / epsilon_start, 1.0 / horizon);
  }
};

// Transition and ReplayBuffer historically lived here; they moved to
// rl/replay.h with the sharded actor/learner replay and are re-exported by
// the include above.

/// \brief Immutable frozen copy of an agent's online Q-network.
///
/// Episode actors act against a DqnPolicy instead of the live agent: the
/// snapshot is taken once (per round in deterministic mode, per publish
/// interval in fast mode), so the learner can keep writing weights without
/// ever racing an actor's forward pass. Selection semantics — ε ordering,
/// first-max tie-break — replicate DqnAgent bit for bit.
class DqnPolicy {
 public:
  /// \brief Q-values of the given legal actions at an encoded state.
  std::vector<double> QValues(const std::vector<double>& state_enc,
                              const std::vector<int>& legal) const;

  /// \brief ε-greedy choice among `legal`; draws rng->Uniform() first (the
  /// exact draw order of DqnAgent::SelectAction).
  int SelectAction(const std::vector<double>& state_enc,
                   const std::vector<int>& legal, double epsilon,
                   Rng* rng) const;

  int GreedyAction(const std::vector<double>& state_enc,
                   const std::vector<int>& legal) const;

 private:
  friend class DqnAgent;
  DqnPolicy(nn::Mlp q, QNetworkMode mode, const nn::Matrix* action_enc,
            int state_dim)
      : q_(std::move(q)),
        mode_(mode),
        action_enc_(action_enc),
        state_dim_(state_dim) {}

  nn::Mlp q_;
  QNetworkMode mode_;
  /// Borrowed from the owning agent; the action space is static, so the
  /// matrix never changes after agent construction. Null in multi-head mode.
  const nn::Matrix* action_enc_;
  int state_dim_;
};

/// \brief Deep-Q agent over the partitioning action space (Sec 3).
///
/// Owns the online Q-network and the target network; exposes ε-greedy action
/// selection and the SGD update of Algorithm 1 (line 10-11 + soft target
/// update). The agent is schema-agnostic: states and actions arrive through
/// the Featurizer / ActionSpace it is constructed with.
class DqnAgent {
 public:
  DqnAgent(const partition::Featurizer* featurizer,
           const partition::ActionSpace* actions, DqnConfig config);

  const DqnConfig& config() const { return config_; }
  double epsilon() const { return epsilon_; }
  void set_epsilon(double epsilon) { epsilon_ = epsilon; }
  /// \brief Apply the per-episode decay (Algorithm 1 line 12).
  void DecayEpsilon();

  /// \brief Q-values of the given legal actions at an encoded state.
  std::vector<double> QValues(const std::vector<double>& state_enc,
                              const std::vector<int>& legal) const;

  /// \brief Q-values of ALL actions for a batch of encoded states: row r of
  /// the result holds Q(state_r, a) for every global action id a. One matrix
  /// pass over the network (state-action mode expands each state against the
  /// precomputed action-encoding matrix), so coalescing concurrent inference
  /// requests into one call amortizes the forward pass. Row r is
  /// bit-identical to the single-state QValues/GreedyAction path: the GEMM
  /// accumulates each output element in a fixed order independent of the
  /// batch's other rows.
  nn::Matrix QValuesBatch(const nn::Matrix& state_encs) const;

  /// \brief ε-greedy action choice among `legal` (Algorithm 1 line 6).
  int SelectAction(const std::vector<double>& state_enc,
                   const std::vector<int>& legal, Rng* rng) const;

  /// \brief Frozen copy of the online network for lock-free actor inference
  /// (see DqnPolicy). Cheap relative to an episode: one Mlp copy.
  DqnPolicy SnapshotPolicy() const;

  /// \brief The online Q-network (read-only; e.g. the serving-side
  /// quantizer). In multi-head mode its output row is indexed by global
  /// action id.
  const nn::Mlp& q_network() const { return *q_; }

  /// \brief Greedy (ε = 0) choice; used at inference time.
  int GreedyAction(const std::vector<double>& state_enc,
                   const std::vector<int>& legal) const;

  /// \brief Store a transition in the replay buffer.
  void Observe(Transition t);

  /// \brief One minibatch SGD step + target soft update (lines 10-13).
  /// No-op until the buffer holds a full batch. Returns the loss (0 if
  /// skipped). `pool` (optional) parallelizes the network forward/backward
  /// passes; results are bit-identical at every thread count.
  double TrainStep(Rng* rng, ThreadPool* pool = nullptr);

  /// \brief TrainStep against an external replay buffer — the actor/learner
  /// pipeline's entry point, where the learner owns the merged buffer
  /// instead of the agent. Same no-op-until-full-batch rule; the TD targets
  /// of the whole minibatch are evaluated as one stacked matrix pass in both
  /// network modes (state-action mode stacks every transition's legal
  /// next-actions into a single GEMM instead of one forward per transition —
  /// row values are bit-identical either way, the GEMM computes rows
  /// independently in a fixed accumulation order).
  double TrainStepFrom(const ReplayBuffer& replay, Rng* rng,
                       ThreadPool* pool = nullptr);

  /// \brief Copy the Q- and target-network weights from another agent with
  /// the same architecture (used to warm-start committee experts from the
  /// trained naive model).
  void CopyWeightsFrom(const DqnAgent& other);

  /// \brief Grow the state encoding by `extra` inputs (incremental training,
  /// Sec 5: new query-frequency slots). Existing first-layer weights are
  /// kept; new inputs start with zero weights, so the function computed on
  /// old workloads is unchanged.
  void ExtendStateInputs(int extra, const partition::Featurizer* new_featurizer);

  size_t replay_size() const { return replay_.size(); }

  /// \brief Persist both networks and the exploration state (not the replay
  /// buffer). Restoring requires an agent built against the same featurizer
  /// dimensions and action space.
  Status Save(std::ostream& os) const;
  Status Load(std::istream& is);
  /// \brief Load continuation for callers that already consumed the leading
  /// "dqn-agent" token (advisor::LoadAgentSnapshot peeks it to distinguish
  /// versioned snapshot headers from legacy agent streams).
  Status LoadAfterMagic(std::istream& is);

 private:
  int InputDim() const;
  /// Write the concatenated (state, action) encoding for state-action mode
  /// into `dst` (one batch-matrix row of InputDim() doubles). The action
  /// half copies straight out of the precomputed `action_enc_` row — the
  /// action space is static, so encodings are computed once at construction
  /// instead of allocating a fresh vector per legal action per step.
  void FillStateAction(const std::vector<double>& state_enc, int action_id,
                       double* dst) const;

  const partition::Featurizer* featurizer_;
  const partition::ActionSpace* actions_;
  DqnConfig config_;
  std::unique_ptr<nn::Mlp> q_;
  std::unique_ptr<nn::Mlp> target_;
  ReplayBuffer replay_;
  double epsilon_;
  /// Row a = EncodeAction(action a); built only for kStateActionInput.
  nn::Matrix action_enc_;
};

}  // namespace lpa::rl
