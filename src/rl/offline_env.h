#pragma once

#include <unordered_map>

#include "costmodel/cost_model.h"
#include "rl/environment.h"

namespace lpa::rl {

/// \brief Offline-training environment (Sec 4.1): rewards come from the
/// network-centric cost model `cm(P, q)`; no database is touched.
///
/// Query costs are cached by (query, physical design restricted to the
/// query's tables) — the same key structure as the online Query Runtime
/// Cache, exploiting that a query's cost only depends on the states of the
/// tables it references.
class OfflineEnv : public PartitioningEnv {
 public:
  OfflineEnv(const costmodel::CostModel* model,
             const workload::Workload* workload);

  const workload::Workload& workload() const override { return *workload_; }

  double QueryCost(int query_index, const partition::PartitioningState& state,
                   double frequency) override;

  size_t cache_size() const { return cache_.size(); }
  size_t cache_hits() const { return hits_; }
  size_t evaluations() const { return evaluations_; }

 private:
  /// Tables referenced per query (cache-key scope); grown lazily so the
  /// workload may gain queries after construction (incremental training).
  const std::vector<schema::TableId>& QueryTables(int query_index);

  const costmodel::CostModel* model_;
  const workload::Workload* workload_;
  std::vector<std::vector<schema::TableId>> query_tables_;
  std::unordered_map<std::string, double> cache_;
  size_t hits_ = 0;
  size_t evaluations_ = 0;
};

}  // namespace lpa::rl
