#pragma once

#include <atomic>

#include "costmodel/cost_cache.h"
#include "costmodel/cost_model.h"
#include "rl/environment.h"

namespace lpa::rl {

/// \brief Offline-training environment (Sec 4.1): rewards come from the
/// network-centric cost model `cm(P, q)`; no database is touched.
///
/// Query costs are memoized in a sharded LRU CostCache keyed by (query,
/// physical design restricted to the query's tables) — the same key
/// structure as the online Query Runtime Cache, exploiting that a query's
/// cost only depends on the states of the tables it references.
///
/// The cost model is stateless, so this environment supports parallel
/// evaluation: WorkloadCost fans per-query costs out across the context's
/// thread pool.
class OfflineEnv : public PartitioningEnv {
 public:
  OfflineEnv(const costmodel::CostModel* model,
             const workload::Workload* workload);

  const workload::Workload& workload() const override { return *workload_; }

  double QueryCost(int query_index, const partition::PartitioningState& state,
                   double frequency) override;

  double WorkloadCost(const partition::PartitioningState& state,
                      const std::vector<double>& frequencies,
                      EvalContext* ctx = nullptr) override;

  bool SupportsParallelEval() const override { return true; }

  size_t cache_size() const { return cache_.size(); }
  size_t cache_hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  /// Tables referenced per query (cache-key scope); grown lazily so the
  /// workload may gain queries after construction (incremental training).
  /// Growth is NOT thread-safe — WorkloadCost pre-grows the table before
  /// fanning out, so concurrent QueryCost calls only read.
  const std::vector<schema::TableId>& QueryTables(int query_index);

  const costmodel::CostModel* model_;
  const workload::Workload* workload_;
  std::vector<std::vector<schema::TableId>> query_tables_;
  costmodel::CostCache cache_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> evaluations_{0};
};

}  // namespace lpa::rl
