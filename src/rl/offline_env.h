#pragma once

#include "costmodel/cost_cache.h"
#include "costmodel/cost_model.h"
#include "rl/environment.h"

namespace lpa::rl {

/// \brief Offline-training environment (Sec 4.1): rewards come from the
/// network-centric cost model `cm(P, q)`; no database is touched.
///
/// Query costs are memoized in a sharded LRU CostCache keyed by the 64-bit
/// fingerprint of (query index, physical design restricted to the query's
/// tables) — the same key structure as the online Query Runtime Cache,
/// exploiting that a query's cost only depends on the states of the tables
/// it references. Fingerprints come from the state's incrementally
/// maintained per-table design hashes, so a probe costs O(|query tables|)
/// hash combines and no string construction.
///
/// The cost model is stateless, so this environment supports both parallel
/// evaluation (WorkloadCost fans per-query costs out across the context's
/// thread pool) and incremental costing (trainers wrap it in a
/// `costmodel::WorkloadCostTracker` and re-price only queries touching
/// tables an action mutated).
class OfflineEnv : public PartitioningEnv {
 public:
  OfflineEnv(const costmodel::CostModel* model,
             const workload::Workload* workload);

  const workload::Workload& workload() const override { return *workload_; }

  double QueryCost(int query_index, const partition::PartitioningState& state,
                   double frequency) override;

  bool SupportsParallelEval() const override { return true; }
  bool SupportsIncrementalCost() const override { return true; }

  /// \brief Extend the per-query table lists after the workload gained
  /// queries (incremental training). NOT thread-safe; call between
  /// evaluations, never concurrently with them.
  void SyncWorkload();

  size_t cache_size() const { return cache_.size(); }
  size_t cache_hits() const { return cache_.stats().hits; }
  /// \brief Cost-model cache probes (hits + misses) — every QueryCost call
  /// probes exactly once.
  size_t evaluations() const {
    auto s = cache_.stats();
    return s.hits + s.misses;
  }

 private:
  const costmodel::CostModel* model_;
  const workload::Workload* workload_;
  /// Tables referenced per query (cache-key scope), built eagerly in the
  /// constructor and extended only by SyncWorkload(), so concurrent
  /// QueryCost calls only ever read.
  std::vector<std::vector<schema::TableId>> query_tables_;
  costmodel::CostCache cache_;
};

}  // namespace lpa::rl
