#pragma once

#include <functional>

#include "rl/dqn.h"
#include "rl/environment.h"

namespace lpa::search {
class ActionPruner;
}  // namespace lpa::search

namespace lpa::rl {

/// \brief Draws a workload frequency vector for the next episode. The naive
/// model trains over uniformly sampled mixes; subspace experts restrict the
/// sampler to their subspace (Sec 5).
using FrequencySampler = std::function<std::vector<double>(Rng*)>;

/// \brief Per-run training telemetry.
struct TrainingResult {
  /// Best (maximum) reward observed in each episode.
  std::vector<double> episode_best_rewards;
  /// Cost used to normalize rewards (workload cost of s0, uniform mix).
  double normalization = 1.0;
  /// Total environment evaluations.
  size_t steps = 0;
  /// Learner SGD steps actually executed (0 until the replay buffer holds a
  /// full minibatch). Filled by TrainActorLearner; the serial Train loop
  /// reports it through the rl.train_steps.count telemetry counter instead.
  size_t train_steps = 0;
};

/// \brief Configuration of the actor/learner training pipeline
/// (EpisodeTrainer::TrainActorLearner).
struct ActorLearnerConfig {
  /// Logical episode-actor slots. The slot count — never the thread count —
  /// fixes the episode→actor mapping, the per-slot RNG streams, and the
  /// shard-merge order, so deterministic-mode digests depend only on this
  /// number: 8 slots on 1 thread and 8 slots on 8 threads are bit-identical.
  int num_actors = 4;

  enum class Mode {
    /// Synchronous rounds: up to `num_actors` episodes run against a frozen
    /// policy snapshot, a barrier, then the learner merges the shards in
    /// slot order and trains. Seeded results are bit-identical at every
    /// thread count (the PR 2-4 discipline). The default.
    kDeterministic,
    /// Work-stealing: actors claim episode indices from a shared counter and
    /// stream transitions while the learner trains concurrently, publishing
    /// fresh policy snapshots every `publish_interval` SGD steps. No merge
    /// barrier, best wall-clock — but episode→actor assignment depends on
    /// timing, so digests are NOT stable across runs or thread counts.
    kFast,
  };
  Mode mode = Mode::kDeterministic;

  /// Learner SGD steps per drained transition (the serial loop does 1).
  int steps_per_transition = 1;

  /// Per-shard SPSC ring capacity; 0 sizes each shard to one episode
  /// (tmax transitions) — exactly a deterministic round's worst case.
  size_t shard_capacity = 0;

  /// kFast only: SGD steps between policy snapshot publishes.
  int publish_interval = 64;
};

/// \brief Result of the greedy inference rollout (Sec 6).
struct InferenceResult {
  partition::PartitioningState best_state;
  /// Environment workload cost at the best state.
  double best_cost = 0.0;
  /// Action ids of the full rollout.
  std::vector<int> actions;
};

/// \brief Runs Algorithm 1 (and its online refinement variant) against any
/// PartitioningEnv, and the Sec 6 inference rollout.
///
/// All entry points take an `EvalContext` carrying the thread pool, the RNG
/// stream, and the metrics sink. With `ctx->pool()` set and an environment
/// that `SupportsParallelEval()`, per-step workload costs fan out over
/// queries and the extra inference rollouts run concurrently — each rollout
/// on its own forked sub-RNG derived from a single master draw, with results
/// merged in rollout-index order, so a seeded run is bit-identical at every
/// thread count.
class EpisodeTrainer {
 public:
  EpisodeTrainer(const schema::Schema* schema, const partition::EdgeSet* edges,
                 const partition::ActionSpace* actions,
                 const partition::Featurizer* featurizer);

  /// \brief Train `agent` for `episodes` episodes of `agent->config().tmax`
  /// steps each. Rewards are `1 - cost/normalization`, an affine (and thus
  /// policy-preserving) transform of the paper's negative-cost reward.
  /// `ctx` must be non-null; episode sampling and ε-greedy exploration draw
  /// from `ctx->rng()`.
  TrainingResult Train(DqnAgent* agent, PartitioningEnv* env,
                       const FrequencySampler& sampler, int episodes,
                       EvalContext* ctx) const;

  /// \brief Actor/learner variant of Train (defined in actor_learner.cpp):
  /// `config.num_actors` episode actors — each with a forked RNG stream and
  /// its own WorkloadCostTracker-backed environment clone — generate
  /// transitions into a sharded replay buffer (one lock-free SPSC shard per
  /// actor slot) while the learner drains the shards into the central buffer
  /// and runs minibatch SGD with stacked-GEMM target evaluation.
  ///
  /// Episode e draws ε from the episode-indexed schedule
  /// max(ε₀·decay^e, ε_min) (ε₀ = the agent's ε on entry), so exploration is
  /// independent of which actor runs the episode. In deterministic mode the
  /// result — episode rewards AND final weights — is bit-identical for a
  /// fixed `num_actors` at any thread count; it intentionally differs from
  /// the serial Train's interleaving (one pipeline round trains after a full
  /// round of episodes, the serial loop trains after every step). Actors run
  /// concurrently only when the environment `SupportsParallelEval()`;
  /// otherwise the slots execute sequentially with identical digests.
  TrainingResult TrainActorLearner(DqnAgent* agent, PartitioningEnv* env,
                                   const FrequencySampler& sampler,
                                   int episodes,
                                   const ActorLearnerConfig& config,
                                   EvalContext* ctx) const;

  /// \brief Greedy rollout from s0; returns the best-reward state on the
  /// trajectory, not the final state (the agent oscillates around the
  /// optimum, Sec 6). `ctx` (optional) parallelizes the per-state workload
  /// cost over queries.
  InferenceResult Infer(const DqnAgent& agent, PartitioningEnv* env,
                        const std::vector<double>& frequencies,
                        EvalContext* ctx = nullptr) const;

  /// \brief Extension of Sec 6's inference: one greedy rollout plus
  /// `extra_rollouts` lightly randomized (ε = `epsilon`) rollouts, returning
  /// the best state visited by any of them. All rollouts are priced by the
  /// environment (the offline simulation / the runtime cache), so the extra
  /// rollouts cost no cluster time; they merely smooth over the greedy
  /// policy's oscillation on large schemas. The extra rollouts run in
  /// parallel when `ctx` has a pool and the environment supports it.
  InferenceResult InferBest(const DqnAgent& agent, PartitioningEnv* env,
                            const std::vector<double>& frequencies,
                            int extra_rollouts, double epsilon,
                            EvalContext* ctx) const;

  /// \brief InferBest with admissible-bound pruning (src/search/): `pruner`
  /// supplies per-query cost floors built from the SAME pure query-cost
  /// function the environment prices with. Three sound savings:
  ///
  ///  - eval-pruning: a visited state whose lower bound already clears the
  ///    incumbent is never priced exactly (rl.eval_prunes.count);
  ///  - greedy-prefix reuse: the extra rollouts replay the greedy rollout's
  ///    cached trajectory until their first exploration step, skipping the
  ///    Q-network forward passes entirely (rl.actions_pruned.count);
  ///  - horizon cutoff: an extra rollout stops early when no state reachable
  ///    within the remaining steps can improve the incumbent
  ///    (rl.rollout_cutoffs.count).
  ///
  /// With `pruner.prune_epsilon() == 0` the returned result — best state,
  /// best cost, AND the greedy action trajectory — is bit-identical to
  /// `InferBest` at every thread count: trajectories are Q-driven (costs
  /// only tighten the incumbent through a strict `<`), each rollout draws
  /// from its own forked RNG in the same order, and only updates that
  /// provably cannot fire are skipped. With ε > 0 the result's cost is
  /// within (1+ε) of the unpruned one. Falls back to plain InferBest when
  /// the environment does not support incremental costing (the bounds rely
  /// on the pure query-cost contract).
  InferenceResult InferBestPruned(const DqnAgent& agent, PartitioningEnv* env,
                                  const std::vector<double>& frequencies,
                                  int extra_rollouts, double epsilon,
                                  const search::ActionPruner& pruner,
                                  EvalContext* ctx) const;

  /// \brief Like InferBest, but states are ranked by a caller-supplied
  /// objective instead of the plain environment cost — e.g. workload cost
  /// plus a weighted repartitioning cost from the currently deployed design
  /// (the reward extension discussed at the end of Sec 3.2).
  ///
  /// The caller supplies an objective FACTORY, not a single objective: each
  /// rollout (the greedy one and every extra) gets its own objective
  /// instance, so stateful objectives — notably ones backed by a
  /// `costmodel::WorkloadCostTracker`, which delta-costs the consecutive
  /// states of a rollout — need no internal synchronization. When `ctx` has
  /// a pool the extra rollouts run concurrently, so the factory's products
  /// must be independent (shared lower layers like the cost cache must be
  /// thread-safe).
  using StateObjective = std::function<double(const partition::PartitioningState&)>;
  using ObjectiveFactory = std::function<StateObjective()>;
  InferenceResult InferObjective(const DqnAgent& agent,
                                 const std::vector<double>& frequencies,
                                 const ObjectiveFactory& objective_factory,
                                 int extra_rollouts, double epsilon,
                                 EvalContext* ctx) const;

  /// \brief Workload cost of the initial state under a uniform mix — the
  /// reward normalizer.
  double Normalization(PartitioningEnv* env, EvalContext* ctx = nullptr) const;

  partition::PartitioningState InitialState() const {
    return partition::PartitioningState::Initial(schema_, edges_);
  }

 private:
  const schema::Schema* schema_;
  const partition::EdgeSet* edges_;
  const partition::ActionSpace* actions_;
  const partition::Featurizer* featurizer_;
};

/// \brief Objective factory that prices states through `env`: each product
/// wraps a fresh `costmodel::WorkloadCostTracker` when the environment
/// supports incremental costing (consecutive rollout states are then
/// delta-costed), and falls back to plain `env->WorkloadCost` otherwise.
/// `frequencies` is captured by pointer and must outlive the products; `ctx`
/// (nullable) parallelizes per-query pricing and is ignored when the
/// environment does not support parallel evaluation.
EpisodeTrainer::ObjectiveFactory MakeEnvObjective(
    PartitioningEnv* env, const std::vector<double>* frequencies,
    EvalContext* ctx);

}  // namespace lpa::rl
