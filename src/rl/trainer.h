#pragma once

#include <functional>

#include "rl/dqn.h"
#include "rl/environment.h"

namespace lpa::rl {

/// \brief Draws a workload frequency vector for the next episode. The naive
/// model trains over uniformly sampled mixes; subspace experts restrict the
/// sampler to their subspace (Sec 5).
using FrequencySampler = std::function<std::vector<double>(Rng*)>;

/// \brief Per-run training telemetry.
struct TrainingResult {
  /// Best (maximum) reward observed in each episode.
  std::vector<double> episode_best_rewards;
  /// Cost used to normalize rewards (workload cost of s0, uniform mix).
  double normalization = 1.0;
  /// Total environment evaluations.
  size_t steps = 0;
};

/// \brief Result of the greedy inference rollout (Sec 6).
struct InferenceResult {
  partition::PartitioningState best_state;
  /// Environment workload cost at the best state.
  double best_cost = 0.0;
  /// Action ids of the full rollout.
  std::vector<int> actions;
};

/// \brief Runs Algorithm 1 (and its online refinement variant) against any
/// PartitioningEnv, and the Sec 6 inference rollout.
///
/// All entry points take an `EvalContext` carrying the thread pool, the RNG
/// stream, and the metrics sink. With `ctx->pool()` set and an environment
/// that `SupportsParallelEval()`, per-step workload costs fan out over
/// queries and the extra inference rollouts run concurrently — each rollout
/// on its own forked sub-RNG derived from a single master draw, with results
/// merged in rollout-index order, so a seeded run is bit-identical at every
/// thread count.
class EpisodeTrainer {
 public:
  EpisodeTrainer(const schema::Schema* schema, const partition::EdgeSet* edges,
                 const partition::ActionSpace* actions,
                 const partition::Featurizer* featurizer);

  /// \brief Train `agent` for `episodes` episodes of `agent->config().tmax`
  /// steps each. Rewards are `1 - cost/normalization`, an affine (and thus
  /// policy-preserving) transform of the paper's negative-cost reward.
  /// `ctx` must be non-null; episode sampling and ε-greedy exploration draw
  /// from `ctx->rng()`.
  TrainingResult Train(DqnAgent* agent, PartitioningEnv* env,
                       const FrequencySampler& sampler, int episodes,
                       EvalContext* ctx) const;

  /// \brief Greedy rollout from s0; returns the best-reward state on the
  /// trajectory, not the final state (the agent oscillates around the
  /// optimum, Sec 6). `ctx` (optional) parallelizes the per-state workload
  /// cost over queries.
  InferenceResult Infer(const DqnAgent& agent, PartitioningEnv* env,
                        const std::vector<double>& frequencies,
                        EvalContext* ctx = nullptr) const;

  /// \brief Extension of Sec 6's inference: one greedy rollout plus
  /// `extra_rollouts` lightly randomized (ε = `epsilon`) rollouts, returning
  /// the best state visited by any of them. All rollouts are priced by the
  /// environment (the offline simulation / the runtime cache), so the extra
  /// rollouts cost no cluster time; they merely smooth over the greedy
  /// policy's oscillation on large schemas. The extra rollouts run in
  /// parallel when `ctx` has a pool and the environment supports it.
  InferenceResult InferBest(const DqnAgent& agent, PartitioningEnv* env,
                            const std::vector<double>& frequencies,
                            int extra_rollouts, double epsilon,
                            EvalContext* ctx) const;

  /// \brief Like InferBest, but states are ranked by a caller-supplied
  /// objective instead of the plain environment cost — e.g. workload cost
  /// plus a weighted repartitioning cost from the currently deployed design
  /// (the reward extension discussed at the end of Sec 3.2).
  ///
  /// The caller supplies an objective FACTORY, not a single objective: each
  /// rollout (the greedy one and every extra) gets its own objective
  /// instance, so stateful objectives — notably ones backed by a
  /// `costmodel::WorkloadCostTracker`, which delta-costs the consecutive
  /// states of a rollout — need no internal synchronization. When `ctx` has
  /// a pool the extra rollouts run concurrently, so the factory's products
  /// must be independent (shared lower layers like the cost cache must be
  /// thread-safe).
  using StateObjective = std::function<double(const partition::PartitioningState&)>;
  using ObjectiveFactory = std::function<StateObjective()>;
  InferenceResult InferObjective(const DqnAgent& agent,
                                 const std::vector<double>& frequencies,
                                 const ObjectiveFactory& objective_factory,
                                 int extra_rollouts, double epsilon,
                                 EvalContext* ctx) const;

  /// \brief Workload cost of the initial state under a uniform mix — the
  /// reward normalizer.
  double Normalization(PartitioningEnv* env, EvalContext* ctx = nullptr) const;

  partition::PartitioningState InitialState() const {
    return partition::PartitioningState::Initial(schema_, edges_);
  }

 private:
  const schema::Schema* schema_;
  const partition::EdgeSet* edges_;
  const partition::ActionSpace* actions_;
  const partition::Featurizer* featurizer_;
};

/// \brief Objective factory that prices states through `env`: each product
/// wraps a fresh `costmodel::WorkloadCostTracker` when the environment
/// supports incremental costing (consecutive rollout states are then
/// delta-costed), and falls back to plain `env->WorkloadCost` otherwise.
/// `frequencies` is captured by pointer and must outlive the products; `ctx`
/// (nullable) parallelizes per-query pricing and is ignored when the
/// environment does not support parallel evaluation.
EpisodeTrainer::ObjectiveFactory MakeEnvObjective(
    PartitioningEnv* env, const std::vector<double>* frequencies,
    EvalContext* ctx);

}  // namespace lpa::rl
