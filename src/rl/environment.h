#pragma once

#include <vector>

#include "partition/partition_state.h"
#include "workload/workload.h"

namespace lpa::rl {

/// \brief Reward source for the DQN agent: something that can price a query
/// under a partitioning (the cost-model simulation offline, the sampled
/// cluster online).
class PartitioningEnv {
 public:
  virtual ~PartitioningEnv() = default;

  virtual const workload::Workload& workload() const = 0;

  /// \brief Cost (seconds, full-database scale) of query `query_index` under
  /// `state`. `frequency` is the query's current workload frequency — the
  /// online environment needs it for the timeout optimization (Sec 4.2).
  virtual double QueryCost(int query_index,
                           const partition::PartitioningState& state,
                           double frequency) = 0;

  /// \brief Frequency-weighted workload cost `sum_j f_j * c(P, q_j)`.
  /// Entries with zero frequency are skipped (and never executed).
  virtual double WorkloadCost(const partition::PartitioningState& state,
                              const std::vector<double>& frequencies);
};

}  // namespace lpa::rl
