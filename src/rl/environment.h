#pragma once

#include <vector>

#include "partition/partition_state.h"
#include "util/eval_context.h"
#include "workload/workload.h"

namespace lpa::rl {

/// \brief Reward source for the DQN agent: something that can price a query
/// under a partitioning (the cost-model simulation offline, the sampled
/// cluster online).
class PartitioningEnv {
 public:
  virtual ~PartitioningEnv() = default;

  virtual const workload::Workload& workload() const = 0;

  /// \brief Cost (seconds, full-database scale) of query `query_index` under
  /// `state`. `frequency` is the query's current workload frequency — the
  /// online environment needs it for the timeout optimization (Sec 4.2).
  virtual double QueryCost(int query_index,
                           const partition::PartitioningState& state,
                           double frequency) = 0;

  /// \brief Frequency-weighted workload cost `sum_j f_j * c(P, q_j)`.
  /// Entries with zero frequency are skipped (and never executed).
  ///
  /// When `ctx` carries a thread pool and the environment reports
  /// SupportsParallelEval(), per-query costs are evaluated concurrently;
  /// each cost lands in its query's slot and the weighted sum is reduced in
  /// query order, so the result is bit-identical to the serial loop.
  virtual double WorkloadCost(const partition::PartitioningState& state,
                              const std::vector<double>& frequencies,
                              EvalContext* ctx = nullptr);

  /// \brief Whether QueryCost may be called from multiple threads at once.
  /// Environments with per-call mutable state (the online env deploys
  /// designs and accounts runtimes) must return false; they are always
  /// evaluated serially regardless of the context's thread count.
  virtual bool SupportsParallelEval() const { return false; }

  /// \brief Whether QueryCost is a pure, frequency-independent function of
  /// (query, designs of the query's tables), so workload costs may be
  /// maintained incrementally by a `costmodel::WorkloadCostTracker` instead
  /// of recomputed per step. The online environment must return false: its
  /// costs carry per-call noise, timeout effects, and runtime accounting.
  virtual bool SupportsIncrementalCost() const { return false; }
};

}  // namespace lpa::rl
