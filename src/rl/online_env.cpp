#include "rl/online_env.h"

#include <algorithm>

#include "telemetry/registry.h"
#include "util/hash.h"
#include "util/logging.h"

namespace lpa::rl {

namespace {

struct OnlineEnvMetrics {
  telemetry::Counter& queries_executed;
  telemetry::Counter& cache_hits;
  telemetry::Counter& timeout_saved;

  static OnlineEnvMetrics& Get() {
    auto& reg = telemetry::MetricsRegistry::Global();
    static OnlineEnvMetrics* m = new OnlineEnvMetrics{
        reg.GetCounter("rl.online_queries_executed.count"),
        reg.GetCounter("rl.online_cache_hits.count"),
        reg.GetCounter("rl.online_timeout_saved.seconds")};
    return *m;
  }
};

}  // namespace

OnlineEnv::OnlineEnv(engine::ClusterDatabase* cluster,
                     const workload::Workload* workload,
                     std::vector<double> scale_factors,
                     OnlineEnvOptions options)
    : cluster_(cluster),
      workload_(workload),
      scale_(std::move(scale_factors)),
      options_(options) {
  if (scale_.empty()) {
    scale_.assign(static_cast<size_t>(workload->num_queries()), 1.0);
  }
  LPA_CHECK(scale_.size() == static_cast<size_t>(workload->num_queries()));
}

const std::vector<schema::TableId>& OnlineEnv::QueryTables(int query_index) {
  while (static_cast<int>(query_tables_.size()) <= query_index) {
    query_tables_.push_back(
        workload_->query(static_cast<int>(query_tables_.size())).tables());
  }
  while (query_tables_.size() > scale_.size()) scale_.push_back(1.0);
  return query_tables_[static_cast<size_t>(query_index)];
}

void OnlineEnv::DeployFor(int query_index,
                          const partition::PartitioningState& state) {
  const auto& deployed = cluster_->deployed_design();
  std::vector<partition::TablePartition> design;
  if (deployed.has_value()) {
    design = deployed->table_partitions();
  } else {
    design = state.table_partitions();
  }
  // Override only the tables the query touches (lazy repartitioning).
  for (schema::TableId t : QueryTables(query_index)) {
    design[static_cast<size_t>(t)] = state.table_partition(t);
  }
  auto hybrid = partition::PartitioningState::FromDesign(
      &state.schema(), &state.edges(), design);
  accounting_.repartition_seconds += cluster_->ApplyDesign(hybrid);
}

double OnlineEnv::QueryCost(int query_index,
                            const partition::PartitioningState& state,
                            double frequency) {
  uint64_t key = HashCombine(Hash64(static_cast<uint64_t>(query_index)),
                             state.DesignFingerprint(QueryTables(query_index)));
  if (options_.use_runtime_cache) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++accounting_.cache_hits;
      OnlineEnvMetrics::Get().cache_hits.Add();
      return it->second;
    }
  }

  if (options_.use_lazy_repartitioning) {
    DeployFor(query_index, state);
  } else {
    accounting_.repartition_seconds += cluster_->ApplyDesign(state);
  }

  // Engine-internal parallelism only: the pool fans the per-node kernels of
  // this one query; the RNG of neither context is ever touched here.
  EvalContext* exec_ctx = exec_ctx_ != nullptr ? exec_ctx_ : wc_ctx_;
  double sample_seconds =
      cluster_->ExecuteQuery(workload_->query(query_index), exec_ctx).seconds;
  ++accounting_.queries_executed;
  OnlineEnvMetrics::Get().queries_executed.Add();
  double scaled = scale_[static_cast<size_t>(query_index)] * sample_seconds;

  // Timeout rule: a single query whose weighted share exceeds the best known
  // workload cost proves the partitioning inferior; cut execution there.
  if (options_.use_timeouts && best_cost_ > 0.0 && frequency > 0.0) {
    double budget_scaled = best_cost_ / frequency;
    if (scaled > budget_scaled) {
      double budget_sample =
          budget_scaled / scale_[static_cast<size_t>(query_index)];
      accounting_.timeout_saved_seconds += sample_seconds - budget_sample;
      OnlineEnvMetrics::Get().timeout_saved.AddSeconds(sample_seconds -
                                                       budget_sample);
      accounting_.query_seconds += budget_sample;
      // The true (uncut) cost still enters the cache so later mixes reuse it.
      cache_.emplace(key, scaled);
      return scaled;
    }
  }
  accounting_.query_seconds += sample_seconds;
  cache_.emplace(key, scaled);
  return scaled;
}

double OnlineEnv::WorkloadCost(const partition::PartitioningState& state,
                               const std::vector<double>& frequencies,
                               EvalContext* ctx) {
  if (!options_.use_lazy_repartitioning) {
    accounting_.repartition_seconds += cluster_->ApplyDesign(state);
  }
  wc_ctx_ = ctx;
  double total = PartitioningEnv::WorkloadCost(state, frequencies, ctx);
  wc_ctx_ = nullptr;
  if (best_cost_ < 0.0 || total < best_cost_) best_cost_ = total;
  return total;
}

std::vector<double> ComputeScaleFactors(
    engine::ClusterDatabase* full, engine::ClusterDatabase* sample,
    const workload::Workload& workload,
    const partition::PartitioningState& p_offline, EvalContext* ctx) {
  full->ApplyDesign(p_offline);
  sample->ApplyDesign(p_offline);
  std::vector<double> scale;
  scale.reserve(static_cast<size_t>(workload.num_queries()));
  for (const auto& q : workload.queries()) {
    double c_full = full->ExecuteQuery(q, ctx).seconds;
    double c_sample = sample->ExecuteQuery(q, ctx).seconds;
    scale.push_back(c_sample > 0.0 ? c_full / c_sample : 1.0);
  }
  return scale;
}

}  // namespace lpa::rl
