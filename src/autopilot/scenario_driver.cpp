#include "autopilot/scenario_driver.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "costmodel/workload_cost_tracker.h"

namespace lpa::autopilot {

double ObservedMixCost(const costmodel::CostModel* model,
                       const workload::Workload* workload,
                       const partition::PartitioningState& design,
                       std::vector<double> mix) {
  double sum = 0.0;
  for (double f : mix) sum += std::max(0.0, f);
  if (sum > 0.0) {
    for (double& f : mix) f = std::max(0.0, f) / sum;
  }
  mix.resize(static_cast<size_t>(workload->num_queries()), 0.0);
  costmodel::WorkloadCostTracker tracker(
      workload, [model, workload](int q,
                                  const partition::PartitioningState& state) {
        return model->QueryCost(workload->query(q), state);
      });
  return tracker.Evaluate(design, mix);
}

costmodel::HardwareProfile ContendedProfile(
    costmodel::HardwareProfile profile) {
  profile.scan_bytes_per_sec *= 0.5;
  profile.join_tuples_per_sec *= 0.5;
  profile.shuffle_bytes_per_sec *= 0.5;
  return profile;
}

void ApplyScenarioOverrides(ScenarioKind kind, AutopilotConfig* config) {
  if (kind != ScenarioKind::kForcedRegression) return;
  config->retrain.validation_gate = false;
  config->retrain.candidate_override =
      [](advisor::AdvisorHandle& candidate)
      -> std::optional<partition::PartitioningState> {
    return partition::PartitioningState::Initial(
        &candidate.advisor().schema(), &candidate.advisor().edges());
  };
}

ScenarioDriver::ScenarioDriver(Autopilot* pilot, ScenarioKind kind,
                               uint64_t seed)
    : pilot_(pilot),
      scenario_(kind, &pilot->controller().incumbent().advisor().schema(),
                &pilot->controller().incumbent().advisor().workload(), seed) {}

Result<TickOutcome> ScenarioDriver::Step(std::ostream* log) {
  ScenarioTick t = scenario_.Next();
  const int tick = tick_++;
  if (t.drift_onset && first_onset_ < 0) first_onset_ = tick;

  RetrainController& controller = pilot_->controller();
  if (t.contention_begins) {
    // The interconnect / host telemetry now reports contention: re-price
    // everything — observations, holdout validation, probation — with the
    // degraded profile, exactly as a recalibrating production monitor would.
    contended_.emplace(&controller.incumbent().advisor().schema(),
                       ContendedProfile(controller.cost_model()->hardware()));
    pilot_->UpdateCostModel(&*contended_);
  }

  WorkloadSample sample;
  sample.frequencies = t.mix;
  sample.new_queries = std::move(t.new_queries);
  sample.observed_cost = ObservedMixCost(
      controller.cost_model(), &controller.incumbent().advisor().workload(),
      controller.deployed_design(), t.mix);
  last_cost_ = sample.observed_cost;
  last_mix_ = std::move(t.mix);

  Result<TickOutcome> outcome = pilot_->Tick(sample);
  if (!outcome.ok()) return outcome;
  if (outcome->verdict.triggered() && detection_latency_ < 0 &&
      first_onset_ >= 0) {
    detection_latency_ = tick - first_onset_;
  }
  if (log != nullptr && (outcome->verdict.triggered() ||
                         outcome->action != TickOutcome::Action::kNone)) {
    *log << "[autopilot] tick " << tick << ": "
         << DriftKindName(outcome->verdict.kind) << " -> "
         << TickActionName(outcome->action);
    if (!outcome->detail.empty()) *log << " (" << outcome->detail << ")";
    *log << "\n";
  }
  return outcome;
}

}  // namespace lpa::autopilot
