#pragma once

#include <string>
#include <vector>

#include "schema/schema.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/workload.h"

namespace lpa::autopilot {

/// \brief The injected drift scenarios of the bench sweep (and the tools'
/// `--drift-scenario` flag).
enum class ScenarioKind {
  kStable,            ///< control run: jittered but stationary mix
  kDiurnal,           ///< square-wave day/night mix oscillation
  kFlashCrowd,        ///< one query suddenly dominates the mix
  kSchemaChange,      ///< structurally new queries appear mid-run
  kNoisyNeighbor,     ///< interconnect contention inflates costs
  kForcedRegression,  ///< drift + sabotaged candidate: drills rollback
};

const char* ScenarioName(ScenarioKind kind);
Result<ScenarioKind> ParseScenario(const std::string& name);
std::vector<ScenarioKind> AllScenarios();

/// \brief What the simulated environment does this tick.
struct ScenarioTick {
  /// Query-mix frequencies (width grows after a schema change).
  std::vector<double> mix;
  /// Structurally new query templates appearing this tick.
  std::vector<workload::QuerySpec> new_queries;
  /// The interconnect becomes contended from this tick on (the driver
  /// switches to its contended cost model / engine profile).
  bool contention_begins = false;
  /// Ground-truth marker: a drift event starts here (for recovery curves).
  bool drift_onset = false;
};

/// \brief Deterministic scripted workload evolution: emits one
/// `ScenarioTick` per call. The "day" mix boosts the first half of the
/// queries, the "night" mix the second half; every tick adds multiplicative
/// jitter so stable phases still look like production traffic.
class DriftScenario {
 public:
  DriftScenario(ScenarioKind kind, const schema::Schema* schema,
                const workload::Workload* workload, uint64_t seed);

  ScenarioKind kind() const { return kind_; }
  int default_ticks() const;
  /// Ground-truth drift events emitted so far.
  int drift_events() const { return drift_events_; }

  ScenarioTick Next();

 private:
  std::vector<double> DayMix() const;
  std::vector<double> NightMix() const;
  std::vector<double> Jitter(std::vector<double> mix);
  /// A structurally new query: a clone of template `slot` in a fresh
  /// selectivity bucket with halved scan selectivities.
  workload::QuerySpec NovelQuery(int slot, int serial) const;

  ScenarioKind kind_;
  const schema::Schema* schema_;
  const workload::Workload* workload_;
  int base_m_;
  int m_;  ///< current mix width (grows on schema change)
  int tick_ = 0;
  int drift_events_ = 0;
  Rng rng_;
};

/// \brief The shared `--autopilot` flag group of `lpa_advise`,
/// `advisor_service`, and `lpa_loadgen` — one spelling everywhere.
struct AutopilotOptions {
  bool autopilot = false;
  std::string drift_scenario = "diurnal";
  /// Scenario ticks to simulate; 0 picks the scenario default.
  int autopilot_ticks = 0;

  /// \brief Register --autopilot, --drift-scenario and --autopilot-ticks.
  void Register(cli::FlagParser* parser);

  /// \brief Post-parse validation (known scenario, non-negative ticks).
  bool Validate(std::string* error) const;

  Result<ScenarioKind> Kind() const { return ParseScenario(drift_scenario); }
};

}  // namespace lpa::autopilot
