#include "autopilot/retrain_controller.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "advisor/serialization.h"
#include "telemetry/registry.h"

namespace lpa::autopilot {

namespace {

struct ControllerMetrics {
  telemetry::Counter& retrains;
  telemetry::Counter& rejects;
  telemetry::Counter& swaps;
  telemetry::Counter& rollbacks;
  /// Swaps that probation later undid. Stays 0 over any stable workload —
  /// the no-false-swap gauge the tests and the bench control run assert on.
  telemetry::Gauge& false_swaps;

  static ControllerMetrics& Get() {
    auto& reg = telemetry::MetricsRegistry::Global();
    static ControllerMetrics* m = new ControllerMetrics{
        reg.GetCounter("autopilot.retrains.count"),
        reg.GetCounter("autopilot.rejects.count"),
        reg.GetCounter("autopilot.swaps.count"),
        reg.GetCounter("autopilot.rollbacks.count"),
        reg.GetGauge("autopilot.false_swaps")};
    return *m;
  }
};

std::vector<double> PadTo(std::vector<double> v, int m) {
  v.resize(static_cast<size_t>(m), 0.0);
  return v;
}

/// Rescale so the max entry is 1 (the featurizer's training convention).
std::vector<double> MaxNormalize(std::vector<double> v) {
  double mx = 0.0;
  for (double x : v) mx = std::max(mx, x);
  if (mx <= 0.0) return v;
  for (double& x : v) x /= mx;
  return v;
}

/// Episode-mix sampler concentrated around the observed drifted mix, with a
/// 20% uniform-mix floor so the agent does not forget the rest of the
/// workload space while it adapts.
rl::FrequencySampler MakeMixSampler(std::vector<double> mix, int m) {
  mix = MaxNormalize(PadTo(std::move(mix), m));
  return [mix, m](Rng* rng) {
    if (rng->Uniform() < 0.2) {
      return workload::SampleUniformFrequencies(m, rng);
    }
    std::vector<double> f(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      f[static_cast<size_t>(i)] = std::min(
          1.0, mix[static_cast<size_t>(i)] * rng->Uniform(0.7, 1.3) + 0.02);
    }
    return f;
  };
}

costmodel::WorkloadCostTracker MakeTrackerWith(
    const costmodel::CostModel* model, const workload::Workload* workload) {
  return costmodel::WorkloadCostTracker(
      workload, [model, workload](int query_index,
                                  const partition::PartitioningState& state) {
        return model->QueryCost(workload->query(query_index), state);
      });
}

}  // namespace

const char* TickActionName(TickOutcome::Action action) {
  switch (action) {
    case TickOutcome::Action::kNone: return "none";
    case TickOutcome::Action::kRetrainStarted: return "retrain_started";
    case TickOutcome::Action::kRetrainRejected: return "retrain_rejected";
    case TickOutcome::Action::kSwapped: return "swapped";
    case TickOutcome::Action::kRolledBack: return "rolled_back";
  }
  return "unknown";
}

RetrainController::RetrainController(advisor::AdvisorHandle incumbent,
                                     const costmodel::CostModel* model,
                                     RetrainConfig config)
    : schema_(&incumbent.advisor().schema()),
      base_workload_(incumbent.advisor().workload()),
      base_config_(incumbent.advisor().config()),
      incumbent_(std::move(incumbent)),
      model_(model),
      config_(std::move(config)),
      bg_ctx_(config_.threads, config_.seed) {
  if (model_ != nullptr) {
    // Bind so snapshot-restored incumbents can suggest without retraining.
    (void)incumbent_.BindCostModel(model_);
  }
}

RetrainController::~RetrainController() { JoinWorker(); }

void RetrainController::JoinWorker() {
  if (worker_ != nullptr) {
    worker_->join();
    worker_.reset();
  }
}

void RetrainController::AddTarget(serving::ModelRegistry* target) {
  if (target != nullptr) targets_.push_back(target);
}

uint64_t RetrainController::published_version() const {
  return targets_.empty() ? 0 : targets_.front()->current_version();
}

void RetrainController::UpdateCostModel(const costmodel::CostModel* model) {
  if (model == nullptr || model == model_) return;
  model_ = model;
  (void)incumbent_.BindCostModel(model_);
  if (in_probation()) {
    // Re-price the open probation window under the recalibrated model.
    const workload::Workload* wl = &incumbent_.advisor().workload();
    probation_deployed_tracker_ = std::make_unique<costmodel::WorkloadCostTracker>(
        MakeTrackerWith(model_, wl));
    probation_rollback_tracker_ = std::make_unique<costmodel::WorkloadCostTracker>(
        MakeTrackerWith(model_, wl));
  }
}

Result<std::vector<int>> RetrainController::AbsorbQueries(
    std::vector<workload::QuerySpec> queries) {
  if (queries.empty()) return std::vector<int>{};
  if (busy()) {
    return Status::Unavailable(
        "retrain in flight; absorb new queries after it completes");
  }
  std::vector<workload::QuerySpec> copy = queries;
  auto indices = incumbent_.AddQueries(std::move(copy));
  if (!indices.ok()) return indices.status();
  for (auto& q : queries) added_queries_.push_back(std::move(q));
  for (int idx : *indices) pending_focus_.push_back(idx);
  if (probation_deployed_tracker_ != nullptr) {
    probation_deployed_tracker_->SyncWorkload();
    probation_rollback_tracker_->SyncWorkload();
  }
  return indices;
}

Result<advisor::AdvisorHandle> RetrainController::BuildReplica(
    const std::string& snapshot, size_t added_count) {
  advisor::AdvisorHandle replica(schema_, base_workload_, base_config_);
  if (added_count > 0) {
    std::vector<workload::QuerySpec> replay(
        added_queries_.begin(),
        added_queries_.begin() + static_cast<long>(added_count));
    auto st = replica.AddQueries(std::move(replay));
    if (!st.ok()) return st.status();
  }
  LPA_RETURN_NOT_OK(replica.Restore(snapshot));
  LPA_RETURN_NOT_OK(replica.BindCostModel(model_));
  return replica;
}

Result<std::shared_ptr<serving::ServingModel>> RetrainController::BuildServable(
    const std::string& snapshot, size_t added_count) {
  auto advisor = std::make_unique<advisor::PartitioningAdvisor>(
      schema_, base_workload_, base_config_);
  if (added_count > 0) {
    std::vector<workload::QuerySpec> replay(
        added_queries_.begin(),
        added_queries_.begin() + static_cast<long>(added_count));
    advisor->AddQueries(std::move(replay));
  }
  std::istringstream is(snapshot);
  LPA_RETURN_NOT_OK(advisor::LoadAgentSnapshot(is, advisor->agent()));
  return std::make_shared<serving::ServingModel>(std::move(advisor), model_,
                                                 config_.batch);
}

uint64_t RetrainController::PublishServable(
    std::shared_ptr<serving::ServingModel> servable) {
  uint64_t version = 0;
  for (serving::ModelRegistry* target : targets_) {
    uint64_t v = target->Publish(servable);
    if (version == 0) version = v;
  }
  return version;
}

Status RetrainController::Deploy(const std::vector<double>& initial_mix) {
  const int m = incumbent_.advisor().workload().num_queries();
  advisor::SuggestRequest request;
  request.frequencies = MaxNormalize(PadTo(initial_mix, m));
  auto suggestion = incumbent_.Suggest(request);
  if (!suggestion.ok()) return suggestion.status();
  deployed_design_ = suggestion->best_state;
  if (!targets_.empty()) {
    auto snapshot = incumbent_.Snapshot();
    if (!snapshot.ok()) return snapshot.status();
    auto servable = BuildServable(*snapshot, added_queries_.size());
    if (!servable.ok()) return servable.status();
    PublishServable(*servable);
  }
  return Status::OK();
}

bool RetrainController::busy() const { return worker_ != nullptr; }

Result<TickOutcome> RetrainController::HandleDrift(
    const DriftVerdict& verdict,
    const std::vector<std::vector<double>>& holdout_mixes,
    const std::vector<double>& current_mix) {
  if (!deployed_design_.has_value()) {
    return Status::FailedPrecondition("Deploy() before HandleDrift()");
  }
  if (busy()) {
    return Status::Unavailable("a retrain is already in flight");
  }
  if (in_probation()) {
    return Status::Unavailable("probation window still open");
  }
  auto snapshot = incumbent_.Snapshot();
  if (!snapshot.ok()) return snapshot.status();
  drift_snapshot_ = std::move(*snapshot);
  drift_added_count_ = added_queries_.size();
  auto replica = BuildReplica(drift_snapshot_, drift_added_count_);
  if (!replica.ok()) return replica.status();

  RetrainJob job{std::move(*replica),
                 verdict,
                 holdout_mixes,
                 current_mix,
                 /*focus=*/{},
                 /*episodes=*/config_.episodes >= 0
                     ? config_.episodes
                     : std::max(1, base_config_.offline_episodes / 6),
                 /*deployed=*/*deployed_design_,
                 /*model=*/model_};
  if (verdict.kind == DriftKind::kSchemaChange && !pending_focus_.empty()) {
    job.focus = std::move(pending_focus_);
    pending_focus_.clear();
  }

  if (!config_.async) {
    return Apply(RunRetrain(std::move(job)));
  }
  job_done_.store(false, std::memory_order_relaxed);
  job_result_.reset();
  worker_ = std::make_unique<std::thread>(
      [this, job = std::make_shared<RetrainJob>(std::move(job))]() mutable {
        RetrainResult result = RunRetrain(std::move(*job));
        job_result_ = std::move(result);
        job_done_.store(true, std::memory_order_release);
      });
  TickOutcome out;
  out.action = TickOutcome::Action::kRetrainStarted;
  out.verdict = verdict;
  return out;
}

RetrainController::RetrainResult RetrainController::RunRetrain(
    RetrainJob job) {
  RetrainResult result;
  result.verdict = job.verdict;
  const int m = job.candidate.advisor().workload().num_queries();

  advisor::TrainSpec spec =
      advisor::TrainSpec::Incremental(job.focus, job.episodes);
  if (job.focus.empty()) spec.sampler = MakeMixSampler(job.mix, m);
  auto trained = job.candidate.Train(spec, &bg_ctx_);
  if (!trained.ok()) {
    result.status = trained.status();
    return result;
  }

  advisor::SuggestRequest request;
  request.frequencies = MaxNormalize(PadTo(job.mix, m));
  auto suggestion = job.candidate.Suggest(request);
  if (!suggestion.ok()) {
    result.status = suggestion.status();
    return result;
  }
  result.design = suggestion->best_state;
  if (config_.candidate_override) {
    if (auto forced = config_.candidate_override(job.candidate)) {
      result.design = *forced;
    }
  }

  // Holdout validation: cost both designs over the recent-mix window with
  // one tracker per design — the same design re-priced under many mixes is
  // nearly free (only weights change, not per-query costs).
  std::vector<std::vector<double>> mixes;
  size_t start = job.holdout.size() > static_cast<size_t>(config_.holdout_mixes)
                     ? job.holdout.size() -
                           static_cast<size_t>(config_.holdout_mixes)
                     : 0;
  for (size_t i = start; i < job.holdout.size(); ++i) {
    mixes.push_back(PadTo(job.holdout[i], m));
  }
  if (mixes.empty()) mixes.push_back(PadTo(job.mix, m));
  const workload::Workload* wl = &job.candidate.advisor().workload();
  auto candidate_tracker = MakeTrackerWith(job.model, wl);
  auto incumbent_tracker = MakeTrackerWith(job.model, wl);
  result.candidate_cost =
      MeanDesignCost(*result.design, mixes, &candidate_tracker);
  result.incumbent_cost =
      MeanDesignCost(job.deployed, mixes, &incumbent_tracker);
  result.pass = !config_.validation_gate ||
                result.candidate_cost <=
                    result.incumbent_cost * (1.0 - config_.swap_margin);
  result.candidate = std::move(job.candidate);
  return result;
}

double RetrainController::MeanDesignCost(
    const partition::PartitioningState& design,
    const std::vector<std::vector<double>>& mixes,
    costmodel::WorkloadCostTracker* tracker) const {
  if (mixes.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& mix : mixes) sum += tracker->Evaluate(design, mix);
  return sum / static_cast<double>(mixes.size());
}

TickOutcome RetrainController::Apply(RetrainResult result) {
  TickOutcome out;
  out.verdict = result.verdict;
  out.candidate_cost = result.candidate_cost;
  out.incumbent_cost = result.incumbent_cost;
  auto& metrics = ControllerMetrics::Get();
  if (!result.status.ok()) {
    out.action = TickOutcome::Action::kNone;
    out.detail = "retrain failed: " + result.status.ToString();
    return out;
  }
  ++counters_.retrains;
  metrics.retrains.Add();
  if (!result.pass) {
    ++counters_.rejects;
    metrics.rejects.Add();
    out.action = TickOutcome::Action::kRetrainRejected;
    out.detail = "candidate lost holdout validation";
    return out;
  }

  auto snapshot = result.candidate->Snapshot();
  if (!snapshot.ok()) {
    out.action = TickOutcome::Action::kNone;
    out.detail = "candidate snapshot failed: " + snapshot.status().ToString();
    return out;
  }
  auto servable = BuildServable(*snapshot, added_queries_.size());
  if (!servable.ok()) {
    out.action = TickOutcome::Action::kNone;
    out.detail = "servable rebuild failed: " + servable.status().ToString();
    return out;
  }

  // Point of no return: retire the incumbent (pinned — its edge set backs
  // the rollback design), promote the candidate, publish, open probation.
  size_t pinned_index = pinned_.size();
  pinned_.push_back(std::move(incumbent_));
  rollback_ = RollbackPoint{*deployed_design_, drift_snapshot_,
                            drift_added_count_, pinned_index};
  incumbent_ = std::move(*result.candidate);
  deployed_design_ = std::move(*result.design);
  out.model_version = PublishServable(*servable);
  ++counters_.swaps;
  metrics.swaps.Add();

  probation_left_ = std::max(1, config_.probation_ticks);
  probation_deployed_sum_ = 0.0;
  probation_rollback_sum_ = 0.0;
  const workload::Workload* wl = &incumbent_.advisor().workload();
  probation_deployed_tracker_ = std::make_unique<costmodel::WorkloadCostTracker>(
      MakeTrackerWith(model_, wl));
  probation_rollback_tracker_ = std::make_unique<costmodel::WorkloadCostTracker>(
      MakeTrackerWith(model_, wl));

  out.action = TickOutcome::Action::kSwapped;
  out.detail = "candidate " + std::to_string(result.candidate_cost) +
               "s vs incumbent " + std::to_string(result.incumbent_cost) + "s";
  return out;
}

std::optional<TickOutcome> RetrainController::StepProbation(
    const std::vector<double>& mix) {
  if (probation_left_ <= 0) return std::nullopt;
  if (!rollback_.has_value()) {
    probation_left_ = 0;
    return std::nullopt;
  }
  const int m = incumbent_.advisor().workload().num_queries();
  std::vector<double> padded = PadTo(mix, m);
  probation_deployed_sum_ +=
      probation_deployed_tracker_->Evaluate(*deployed_design_, padded);
  probation_rollback_sum_ +=
      probation_rollback_tracker_->Evaluate(rollback_->design, padded);
  if (--probation_left_ > 0) return std::nullopt;

  // Window closed: compare the deployment against the rollback design under
  // the mixes actually observed since the swap.
  const int window = std::max(1, config_.probation_ticks);
  double deployed_mean = probation_deployed_sum_ / window;
  double rollback_mean = probation_rollback_sum_ / window;
  TickOutcome out;
  out.candidate_cost = deployed_mean;
  out.incumbent_cost = rollback_mean;
  auto& metrics = ControllerMetrics::Get();
  if (deployed_mean > rollback_mean * (1.0 + config_.rollback_margin)) {
    auto servable =
        BuildServable(rollback_->snapshot, rollback_->added_count);
    if (!servable.ok()) {
      out.action = TickOutcome::Action::kNone;
      out.detail = "rollback rebuild failed: " + servable.status().ToString();
    } else {
      // Swap roles: the regressing candidate parks in the pinned slot the
      // previous incumbent vacates.
      std::swap(incumbent_, pinned_[rollback_->pinned_index]);
      deployed_design_ = rollback_->design;
      out.model_version = PublishServable(*servable);
      ++counters_.rollbacks;
      metrics.rollbacks.Add();
      metrics.false_swaps.Set(static_cast<double>(counters_.rollbacks));
      out.action = TickOutcome::Action::kRolledBack;
      out.detail = "deployment regressed " +
                   std::to_string(deployed_mean / rollback_mean) +
                   "x vs rollback design";
    }
  } else {
    out.action = TickOutcome::Action::kNone;
    out.detail = "probation passed";
  }
  rollback_.reset();
  probation_deployed_tracker_.reset();
  probation_rollback_tracker_.reset();
  return out;
}

std::optional<TickOutcome> RetrainController::Poll() {
  if (worker_ == nullptr) return std::nullopt;
  if (!job_done_.load(std::memory_order_acquire)) return std::nullopt;
  JoinWorker();
  RetrainResult result = std::move(*job_result_);
  job_result_.reset();
  job_done_.store(false, std::memory_order_relaxed);
  return Apply(std::move(result));
}

}  // namespace lpa::autopilot
