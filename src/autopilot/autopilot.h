#pragma once

#include <optional>
#include <vector>

#include "autopilot/drift_monitor.h"
#include "autopilot/retrain_controller.h"

namespace lpa::autopilot {

struct AutopilotConfig {
  DriftMonitorConfig monitor;
  RetrainConfig retrain;
};

/// \brief The closed loop: feed one `WorkloadSample` per tick and the
/// autopilot watches for drift (`DriftMonitor`), retrains + validates a
/// candidate on drift (`RetrainController`), hot-swaps it through every
/// registered `serving::ModelRegistry` / tenant namespace, and rolls back
/// automatically when the fresh deployment regresses. No manual step
/// anywhere: `Start` once, then `Tick` forever.
///
/// Single-threaded control plane: call Tick/UpdateCostModel/AddTarget from
/// one thread. With `retrain.async = true` the training itself runs on a
/// background thread and Tick stays cheap — serving traffic against the
/// published registries continues concurrently throughout (the RCU swap
/// guarantees in-flight requests finish on the version they started with).
class Autopilot {
 public:
  Autopilot(advisor::AdvisorHandle incumbent,
            const costmodel::CostModel* model, AutopilotConfig config = {});

  /// \brief Register a hot-swap target (a tenant's registry from
  /// `fleet::TenantDirectory::GetOrCreate`, or a standalone registry).
  /// Call before `Start`.
  void AddTarget(serving::ModelRegistry* target);

  /// \brief Initial rollout: suggest + publish for the starting mix.
  Status Start(const std::vector<double>& initial_mix);

  /// \brief One control-loop tick. Absorbs structurally new queries, runs
  /// the detectors, advances probation, harvests finished background
  /// retrains, and launches a retrain on a fresh verdict.
  Result<TickOutcome> Tick(const WorkloadSample& sample);

  /// \brief Cost-model recalibration (hardware telemetry changed — e.g. a
  /// noisy neighbor now contends for the interconnect).
  void UpdateCostModel(const costmodel::CostModel* model);

  const partition::PartitioningState& deployed_design() const {
    return controller_.deployed_design();
  }
  const RetrainController::Counters& counters() const {
    return controller_.counters();
  }
  DriftMonitor& monitor() { return monitor_; }
  RetrainController& controller() { return controller_; }

 private:
  DriftMonitor monitor_;
  RetrainController controller_;
  /// Verdict that fired while the controller was busy/probating; replayed
  /// as soon as it frees up so no drift event is ever dropped.
  std::optional<DriftVerdict> deferred_;
  /// New queries that arrived while a retrain was in flight.
  std::vector<workload::QuerySpec> pending_queries_;
};

}  // namespace lpa::autopilot
