#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "autopilot/autopilot.h"
#include "autopilot/scenarios.h"
#include "costmodel/cost_model.h"

namespace lpa::autopilot {

/// \brief Frequency-weighted cost of `design` over `workload` under the
/// L1-normalized `mix` (resized to the workload width), priced by `model` —
/// the `observed_cost` telemetry a production monitoring plane would feed
/// the autopilot.
double ObservedMixCost(const costmodel::CostModel* model,
                       const workload::Workload* workload,
                       const partition::PartitioningState& design,
                       std::vector<double> mix);

/// \brief The noisy neighbor's hardware profile: contention for compute and
/// IO, not just the wire, so the slowdown reaches co-located designs too.
costmodel::HardwareProfile ContendedProfile(costmodel::HardwareProfile profile);

/// \brief Scenario-specific retrain overrides. Forced-regression disables
/// the holdout gate and sabotages every candidate with the unpartitioned
/// initial design, so the probation window's automatic rollback is drilled
/// end to end; every other scenario leaves the config untouched.
void ApplyScenarioOverrides(ScenarioKind kind, AutopilotConfig* config);

/// \brief Drives a borrowed `Autopilot` through one scripted `DriftScenario`,
/// tick by tick: prices the deployed design under each tick's mix with the
/// controller's current cost model, switches to a contended pricing model
/// when the scenario's noisy neighbor arrives (the contended model is owned
/// here and outlives the loop), and tracks ground truth for the recovery
/// report (drift events, detection latency). Shared by the `--autopilot`
/// modes of `lpa_advise`, `advisor_service`, and `lpa_loadgen`.
class ScenarioDriver {
 public:
  ScenarioDriver(Autopilot* pilot, ScenarioKind kind, uint64_t seed);

  /// \brief One scenario tick through the autopilot. When `log` is non-null,
  /// ticks where a detector or the controller acted get a one-line trace.
  Result<TickOutcome> Step(std::ostream* log = nullptr);

  int default_ticks() const { return scenario_.default_ticks(); }
  int ticks() const { return tick_; }
  int drift_events() const { return scenario_.drift_events(); }
  /// Ticks from the first drift onset to the first detector verdict
  /// (-1: no drift injected yet / never detected).
  int detection_latency() const { return detection_latency_; }
  /// Deployed-design cost under the most recent tick's mix.
  double deployed_cost() const { return last_cost_; }
  /// The most recent tick's (jittered) mix.
  const std::vector<double>& last_mix() const { return last_mix_; }

 private:
  Autopilot* pilot_;
  DriftScenario scenario_;
  std::optional<costmodel::CostModel> contended_;
  int tick_ = 0;
  int first_onset_ = -1;
  int detection_latency_ = -1;
  double last_cost_ = 0.0;
  std::vector<double> last_mix_;
};

}  // namespace lpa::autopilot
