#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "workload/query.h"

namespace lpa::autopilot {

/// \brief Tuning of the three drift detectors. Defaults are chosen so a
/// stable workload with realistic frequency jitter and cost noise NEVER
/// triggers (asserted by tests/autopilot_test.cpp and the bench's
/// stable-control run), while genuine drift fires within a few ticks.
struct DriftMonitorConfig {
  /// EWMA weight of the newest mix sample (higher = snappier, noisier).
  double mix_smoothing = 0.35;
  /// Total-variation distance (in [0, 1]) between the smoothed mix and the
  /// baseline-at-last-adaptation that arms the mix-shift detector...
  double mix_trigger = 0.22;
  /// ...and the hysteresis level that disarms it. Between clear and trigger
  /// the armed counter holds — an oscillating distance cannot re-accumulate
  /// patience from zero each tick, nor fire on one spike.
  double mix_clear = 0.10;
  /// Consecutive above-trigger ticks before a mix-shift verdict.
  int mix_patience = 3;
  /// CUSUM slack k: relative cost inflation tolerated per tick (absorbs
  /// engine noise and borderline plan flips).
  double cusum_slack = 0.08;
  /// CUSUM threshold h: accumulated excess inflation that fires the
  /// bulk-update / noisy-neighbor cost detector.
  double cusum_threshold = 0.75;
  /// Ticks of observed cost averaged into the post-adaptation baseline.
  int cost_baseline_ticks = 3;
  /// Ticks after MarkAdapted() during which no verdict fires (the retrain/
  /// swap settling window; also when the cost baseline re-accumulates).
  int cooldown_ticks = 4;
  /// Raw mixes retained for the holdout-validation window.
  int history = 8;
};

enum class DriftKind {
  kNone = 0,
  kMixShift,      ///< the query-mix moved away from the adapted baseline
  kCostInflation, ///< sustained workload-cost inflation at a similar mix
  kSchemaChange,  ///< structurally new queries appeared
};

const char* DriftKindName(DriftKind kind);

/// \brief One detector decision. `magnitude` is detector-specific: the TV
/// distance for mix shift, the CUSUM statistic for cost inflation, the
/// number of pending new queries for schema change.
struct DriftVerdict {
  DriftKind kind = DriftKind::kNone;
  double magnitude = 0.0;
  std::string reason;

  bool triggered() const { return kind != DriftKind::kNone; }
};

/// \brief One observation tick: what the telemetry/monitoring plane saw
/// since the last tick.
struct WorkloadSample {
  /// Observed query-mix frequencies (any non-negative scale; normalized
  /// internally). May be wider than previous samples after a schema change.
  std::vector<double> frequencies;
  /// Measured frequency-weighted workload cost of the deployed design under
  /// this mix (simulated seconds); < 0 when not measured this tick.
  double observed_cost = -1.0;
  /// Structurally new query templates the classifier could not map to any
  /// known slot (`WorkloadMonitor::unknown_queries` in production).
  std::vector<workload::QuerySpec> new_queries;
};

/// \brief Watches workload samples for the three drift families with
/// hysteresis + patience + cooldown so that stable workloads never trigger.
///
/// Detector math (INTERNALS §10):
///  - Mix shift: the observed mix is L1-normalized and EWMA-smoothed; the
///    statistic is the total-variation distance `TV(smoothed, baseline)`,
///    fired after `mix_patience` consecutive ticks above `mix_trigger`,
///    disarmed only below `mix_clear` (hysteresis band).
///  - Cost inflation: one-sided CUSUM on the relative cost ratio
///    `x_t = cost_t / baseline`, `S_t = max(0, S_{t-1} + x_t - 1 - k)`,
///    fired at `S_t > h`. The baseline is the mean of the first
///    `cost_baseline_ticks` measured ticks after the last adaptation.
///  - Schema change: new query templates accumulate in a pending counter
///    and fire as soon as the monitor is out of cooldown (never lost, never
///    thrashing a mid-swap controller).
///
/// Exactly one verdict fires per tick (schema > cost > mix priority); the
/// controller calls `MarkAdapted()` after a swap/rejection/rollback, which
/// re-baselines both detectors and starts the cooldown.
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorConfig config = {});

  DriftVerdict Observe(const WorkloadSample& sample);

  /// \brief Re-baseline after the controller adapted (swap, validated
  /// rejection, rollback): the current smoothed mix becomes the reference,
  /// the CUSUM resets, the cost baseline re-accumulates, cooldown starts.
  void MarkAdapted();

  /// \brief Up to `k` most recent raw (L1-normalized) mixes, oldest first,
  /// zero-padded to the current width — the holdout-validation window.
  std::vector<std::vector<double>> RecentMixes(int k) const;

  const std::vector<double>& smoothed_mix() const { return smoothed_; }
  double mix_distance() const { return mix_distance_; }
  double cusum() const { return cusum_; }
  bool in_cooldown() const { return cooldown_left_ > 0; }
  int64_t ticks() const { return ticks_; }

 private:
  void GrowTo(size_t width);

  DriftMonitorConfig config_;
  int64_t ticks_ = 0;
  std::vector<double> smoothed_;
  std::vector<double> baseline_mix_;
  std::deque<std::vector<double>> history_;
  double mix_distance_ = 0.0;
  int mix_armed_ticks_ = 0;
  double cusum_ = 0.0;
  double cost_baseline_sum_ = 0.0;
  int cost_baseline_count_ = 0;
  int pending_new_queries_ = 0;
  int cooldown_left_ = 0;
};

}  // namespace lpa::autopilot
