#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor_handle.h"
#include "autopilot/drift_monitor.h"
#include "costmodel/workload_cost_tracker.h"
#include "serving/model_registry.h"
#include "util/eval_context.h"

namespace lpa::autopilot {

/// \brief Tuning of the retrain → validate → swap → probation pipeline.
struct RetrainConfig {
  /// Incremental episodes per retrain; < 0 picks the Exp 3c default
  /// (`offline_episodes / 6`).
  int episodes = -1;
  /// Recent mixes the candidate and incumbent designs are costed over
  /// before a swap (the holdout-validation window). Kept at the detector's
  /// patience so a post-verdict holdout contains only post-drift mixes —
  /// widening it dilutes the gate with pre-drift traffic the candidate was
  /// never meant to serve.
  int holdout_mixes = 3;
  /// Relative improvement the candidate must show over the incumbent on the
  /// holdout (`candidate <= incumbent * (1 - swap_margin)`).
  double swap_margin = 0.02;
  /// When false, every retrained candidate swaps in unvalidated — the
  /// chaos-drill mode that exercises the rollback path (probation still
  /// guards the deployment).
  bool validation_gate = true;
  /// Relative regression vs the rolled-back design, averaged over the
  /// probation window, that triggers an automatic rollback.
  double rollback_margin = 0.08;
  /// Ticks the post-swap probation window lasts.
  int probation_ticks = 3;
  /// Train candidates on a background thread (`Poll` applies the result)
  /// instead of inline in `HandleDrift`.
  bool async = false;
  /// Threads of the background training EvalContext.
  int threads = 1;
  uint64_t seed = 0x5eedULL;
  /// Batcher config of published servables.
  serving::InferenceBatcher::Config batch;
  /// Chaos/testing hook: replace the freshly trained candidate's suggested
  /// design (e.g. with a known-bad one) before validation, to drill the
  /// rollback protocol end to end. Return nullopt to keep the suggestion.
  std::function<std::optional<partition::PartitioningState>(
      advisor::AdvisorHandle&)>
      candidate_override;
};

/// \brief What one autopilot tick did.
struct TickOutcome {
  enum class Action {
    kNone = 0,
    kRetrainStarted,   ///< async retrain kicked off
    kRetrainRejected,  ///< candidate lost the holdout validation
    kSwapped,          ///< candidate published; probation started
    kRolledBack,       ///< incumbent restored after a regressing swap
  };
  Action action = Action::kNone;
  DriftVerdict verdict;
  /// Registry version after a swap/rollback (first target; 0 without one).
  uint64_t model_version = 0;
  /// Mean holdout costs that decided the gate (swap/reject only).
  double candidate_cost = -1.0;
  double incumbent_cost = -1.0;
  std::string detail;
};

const char* TickActionName(TickOutcome::Action action);

/// \brief Owns the incumbent advisor and runs the adaptation pipeline: on a
/// drift verdict it snapshots the incumbent, incrementally trains a replica
/// candidate on a background `EvalContext`, validates candidate vs incumbent
/// designs over the holdout mixes with `WorkloadCostTracker`s, hot-swaps
/// through every registered `serving::ModelRegistry` target, and watches a
/// probation window that rolls the previous incumbent back if the fresh
/// deployment regresses.
///
/// Candidate replicas replay the incumbent's construction history (base
/// workload + every absorbed query, in order) so snapshot shapes always
/// line up — including after reserve slots are spent and the Q-network
/// input grew. Retired incumbents stay pinned for the controller's lifetime
/// because published designs reference their owners' edge sets.
class RetrainController {
 public:
  struct Counters {
    uint64_t retrains = 0;   ///< candidates trained to completion
    uint64_t rejects = 0;    ///< candidates stopped by the holdout gate
    uint64_t swaps = 0;      ///< candidates published
    uint64_t rollbacks = 0;  ///< swaps undone by probation
  };

  RetrainController(advisor::AdvisorHandle incumbent,
                    const costmodel::CostModel* model, RetrainConfig config);
  ~RetrainController();

  RetrainController(const RetrainController&) = delete;
  RetrainController& operator=(const RetrainController&) = delete;

  /// \brief Register a registry every future swap publishes into. Call
  /// before `Deploy`.
  void AddTarget(serving::ModelRegistry* target);

  /// \brief Initial rollout: suggest a design for `initial_mix`, record it
  /// as deployed, and publish the incumbent into every target.
  Status Deploy(const std::vector<double>& initial_mix);

  /// \brief Swap the pricing model (cost-model recalibration — e.g. the
  /// hardware telemetry now reflects a noisy neighbor's contention). Future
  /// retrains, validations, and probation costing use the new model.
  void UpdateCostModel(const costmodel::CostModel* model);

  /// \brief Absorb structurally new queries into the incumbent (zero-
  /// initialized slots: behaviour on the old workload is unchanged) and
  /// record them for candidate replay + the next schema-drift retrain.
  Result<std::vector<int>> AbsorbQueries(
      std::vector<workload::QuerySpec> queries);

  /// \brief Advance the probation window under the current mix; returns a
  /// kRolledBack outcome when the window closes on a regression, a kNone
  /// outcome when it closes clean, nullopt while it is still open or
  /// inactive.
  std::optional<TickOutcome> StepProbation(const std::vector<double>& mix);

  /// \brief React to a drift verdict: retrain + validate + maybe swap.
  /// Synchronous mode returns the final outcome; async mode returns
  /// kRetrainStarted and the outcome surfaces through `Poll`.
  Result<TickOutcome> HandleDrift(
      const DriftVerdict& verdict,
      const std::vector<std::vector<double>>& holdout_mixes,
      const std::vector<double>& current_mix);

  /// \brief Harvest a finished async retrain, applying its swap/rejection.
  /// nullopt while idle or still training.
  std::optional<TickOutcome> Poll();

  bool busy() const;
  bool in_probation() const { return probation_left_ > 0; }
  bool deployed() const { return deployed_design_.has_value(); }
  /// Valid after Deploy().
  const partition::PartitioningState& deployed_design() const {
    return *deployed_design_;
  }
  const Counters& counters() const { return counters_; }
  advisor::AdvisorHandle& incumbent() { return incumbent_; }
  const costmodel::CostModel* cost_model() const { return model_; }
  uint64_t published_version() const;

 private:
  struct RetrainJob {
    advisor::AdvisorHandle candidate;
    DriftVerdict verdict;
    std::vector<std::vector<double>> holdout;
    std::vector<double> mix;
    std::vector<int> focus;
    int episodes = 0;
    /// Copies captured at job-prep time so the worker thread never reads
    /// controller state that the control thread may mutate.
    partition::PartitioningState deployed;
    const costmodel::CostModel* model = nullptr;
  };
  struct RetrainResult {
    Status status = Status::OK();
    std::optional<advisor::AdvisorHandle> candidate;
    std::optional<partition::PartitioningState> design;
    DriftVerdict verdict;
    double candidate_cost = -1.0;
    double incumbent_cost = -1.0;
    bool pass = false;
  };

  /// Replica with the incumbent's construction lineage — base workload plus
  /// the first `added_count` absorbed queries, replayed in order so the
  /// snapshot's network shapes line up — restored from `snapshot`.
  Result<advisor::AdvisorHandle> BuildReplica(const std::string& snapshot,
                                              size_t added_count);
  /// Servable advisor rebuilt from `snapshot` (same lineage replay).
  Result<std::shared_ptr<serving::ServingModel>> BuildServable(
      const std::string& snapshot, size_t added_count);
  /// Publish into every target; returns the first target's new version.
  uint64_t PublishServable(std::shared_ptr<serving::ServingModel> servable);
  /// Train + validate; runs inline or on worker_.
  RetrainResult RunRetrain(RetrainJob job);
  TickOutcome Apply(RetrainResult result);
  double MeanDesignCost(const partition::PartitioningState& design,
                        const std::vector<std::vector<double>>& mixes,
                        costmodel::WorkloadCostTracker* tracker) const;
  costmodel::WorkloadCostTracker MakeTracker(
      const workload::Workload* workload) const;
  void JoinWorker();

  const schema::Schema* schema_;
  /// The workload the incumbent was constructed with, before any absorbed
  /// queries — the replay base for replicas and servables.
  workload::Workload base_workload_;
  advisor::AdvisorConfig base_config_;
  std::vector<workload::QuerySpec> added_queries_;
  std::vector<int> pending_focus_;

  advisor::AdvisorHandle incumbent_;
  const costmodel::CostModel* model_;
  RetrainConfig config_;
  std::vector<serving::ModelRegistry*> targets_;
  std::optional<partition::PartitioningState> deployed_design_;
  /// Retired / superseded handles, pinned because their edge sets may still
  /// be referenced by deployed or rollback designs.
  std::vector<advisor::AdvisorHandle> pinned_;

  /// Rollback point of the most recent swap: the previous incumbent's
  /// design, snapshot, replay depth, and pinned slot.
  struct RollbackPoint {
    partition::PartitioningState design;
    std::string snapshot;
    size_t added_count = 0;
    size_t pinned_index = 0;
  };
  std::optional<RollbackPoint> rollback_;
  /// Snapshot of the incumbent taken when the current retrain was prepared.
  std::string drift_snapshot_;
  size_t drift_added_count_ = 0;
  int probation_left_ = 0;
  double probation_deployed_sum_ = 0.0;
  double probation_rollback_sum_ = 0.0;
  std::unique_ptr<costmodel::WorkloadCostTracker> probation_deployed_tracker_;
  std::unique_ptr<costmodel::WorkloadCostTracker> probation_rollback_tracker_;

  /// Background training context (its pool is what "background EvalContext"
  /// means in sync mode; in async mode the worker thread drives it).
  EvalContext bg_ctx_;
  std::unique_ptr<std::thread> worker_;
  std::atomic<bool> job_done_{false};
  std::optional<RetrainResult> job_result_;

  Counters counters_;
};

}  // namespace lpa::autopilot
