#include "autopilot/autopilot.h"

#include <utility>

namespace lpa::autopilot {

Autopilot::Autopilot(advisor::AdvisorHandle incumbent,
                     const costmodel::CostModel* model, AutopilotConfig config)
    : monitor_(config.monitor),
      controller_(std::move(incumbent), model, std::move(config.retrain)) {}

void Autopilot::AddTarget(serving::ModelRegistry* target) {
  controller_.AddTarget(target);
}

Status Autopilot::Start(const std::vector<double>& initial_mix) {
  return controller_.Deploy(initial_mix);
}

void Autopilot::UpdateCostModel(const costmodel::CostModel* model) {
  controller_.UpdateCostModel(model);
}

Result<TickOutcome> Autopilot::Tick(const WorkloadSample& sample) {
  // 1. Absorb structurally new queries into the incumbent first: the slots
  //    are zero-initialized, so serving behaviour is unchanged until the
  //    schema-change verdict triggers the incremental retrain. Queries that
  //    arrive mid-retrain are buffered until the worker finishes.
  for (const auto& q : sample.new_queries) pending_queries_.push_back(q);
  if (!pending_queries_.empty() && !controller_.busy()) {
    auto absorbed = controller_.AbsorbQueries(std::move(pending_queries_));
    pending_queries_.clear();
    if (!absorbed.ok()) return absorbed.status();
  }

  // 2. Detectors observe the tick (schema changes accumulate as pending
  //    until out of cooldown, so nothing is lost while adapting).
  DriftVerdict verdict = monitor_.Observe(sample);

  // 3. Probation advances under the observed mix; a closing window may
  //    roll the previous incumbent back.
  if (auto outcome = controller_.StepProbation(monitor_.smoothed_mix())) {
    if (verdict.triggered()) deferred_ = verdict;
    if (outcome->action != TickOutcome::Action::kNone) {
      monitor_.MarkAdapted();
    }
    return *outcome;
  }

  // 4. Harvest a finished background retrain.
  if (auto outcome = controller_.Poll()) {
    if (verdict.triggered()) deferred_ = verdict;
    monitor_.MarkAdapted();
    return *outcome;
  }

  // 5. Launch on a fresh (or deferred) verdict when the controller is free.
  if (!verdict.triggered() && deferred_.has_value() && !controller_.busy() &&
      !controller_.in_probation() && !monitor_.in_cooldown()) {
    verdict = *deferred_;
    deferred_.reset();
  }
  if (verdict.triggered()) {
    if (controller_.busy() || controller_.in_probation()) {
      deferred_ = verdict;
      TickOutcome out;
      out.verdict = verdict;
      out.detail = "deferred: controller busy";
      return out;
    }
    auto outcome = controller_.HandleDrift(
        verdict, monitor_.RecentMixes(/*k=*/8), monitor_.smoothed_mix());
    if (!outcome.ok()) return outcome.status();
    if (outcome->action != TickOutcome::Action::kRetrainStarted) {
      // Synchronous retrain finished within the tick (swap or rejection
      // both count as "adapted": the incumbent is the best known design).
      monitor_.MarkAdapted();
    }
    return *outcome;
  }

  TickOutcome out;
  out.verdict = verdict;
  return out;
}

}  // namespace lpa::autopilot
