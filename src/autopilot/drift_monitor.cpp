#include "autopilot/drift_monitor.h"

#include <algorithm>
#include <cmath>

#include "telemetry/registry.h"

namespace lpa::autopilot {

namespace {

struct MonitorMetrics {
  telemetry::Counter& triggers;
  telemetry::Gauge& mix_distance;
  telemetry::Gauge& cusum;

  static MonitorMetrics& Get() {
    auto& reg = telemetry::MetricsRegistry::Global();
    static MonitorMetrics* m = new MonitorMetrics{
        reg.GetCounter("autopilot.triggers.count"),
        reg.GetGauge("autopilot.mix_distance"),
        reg.GetGauge("autopilot.cusum")};
    return *m;
  }
};

/// L1-normalize to a probability vector (all-zero stays all-zero).
std::vector<double> NormalizeL1(std::vector<double> v) {
  double sum = 0.0;
  for (double x : v) sum += std::max(0.0, x);
  if (sum <= 0.0) return v;
  for (double& x : v) x = std::max(0.0, x) / sum;
  return v;
}

/// Total-variation distance between two probability vectors, padding the
/// shorter with zeros. In [0, 1].
double TotalVariation(const std::vector<double>& a,
                      const std::vector<double>& b) {
  size_t n = std::max(a.size(), b.size());
  double l1 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double x = i < a.size() ? a[i] : 0.0;
    double y = i < b.size() ? b[i] : 0.0;
    l1 += std::abs(x - y);
  }
  return 0.5 * l1;
}

}  // namespace

const char* DriftKindName(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone: return "none";
    case DriftKind::kMixShift: return "mix_shift";
    case DriftKind::kCostInflation: return "cost_inflation";
    case DriftKind::kSchemaChange: return "schema_change";
  }
  return "unknown";
}

DriftMonitor::DriftMonitor(DriftMonitorConfig config) : config_(config) {}

void DriftMonitor::GrowTo(size_t width) {
  if (smoothed_.size() < width) smoothed_.resize(width, 0.0);
  if (baseline_mix_.size() < width) baseline_mix_.resize(width, 0.0);
}

DriftVerdict DriftMonitor::Observe(const WorkloadSample& sample) {
  ++ticks_;
  const bool first = smoothed_.empty() && baseline_mix_.empty();

  // --- Mix smoothing + history -------------------------------------------
  std::vector<double> mix = NormalizeL1(sample.frequencies);
  GrowTo(mix.size());
  if (first) {
    smoothed_ = mix;
    baseline_mix_ = mix;
  } else {
    const double a = config_.mix_smoothing;
    for (size_t i = 0; i < smoothed_.size(); ++i) {
      double x = i < mix.size() ? mix[i] : 0.0;
      smoothed_[i] = (1.0 - a) * smoothed_[i] + a * x;
    }
  }
  history_.push_back(std::move(mix));
  while (static_cast<int>(history_.size()) > std::max(1, config_.history)) {
    history_.pop_front();
  }

  // --- Schema-change signal (pending until out of cooldown) --------------
  pending_new_queries_ += static_cast<int>(sample.new_queries.size());

  // --- Cost-inflation CUSUM ----------------------------------------------
  if (sample.observed_cost >= 0.0) {
    if (cost_baseline_count_ < config_.cost_baseline_ticks) {
      cost_baseline_sum_ += sample.observed_cost;
      ++cost_baseline_count_;
    } else if (cost_baseline_sum_ > 0.0) {
      double baseline = cost_baseline_sum_ / cost_baseline_count_;
      double ratio = sample.observed_cost / baseline;
      cusum_ = std::max(0.0, cusum_ + ratio - 1.0 - config_.cusum_slack);
    }
  }

  auto& metrics = MonitorMetrics::Get();
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    // The EWMA is still settling toward the post-adaptation mix: keep the
    // baseline tracking it so the tail of that convergence is not mistaken
    // for a second drift once the cooldown expires.
    baseline_mix_ = smoothed_;
    mix_distance_ = 0.0;
    mix_armed_ticks_ = 0;
    metrics.mix_distance.Set(mix_distance_);
    metrics.cusum.Set(cusum_);
    return {};
  }

  // --- Mix-shift statistic with hysteresis + patience --------------------
  mix_distance_ = TotalVariation(smoothed_, baseline_mix_);
  if (mix_distance_ > config_.mix_trigger) {
    ++mix_armed_ticks_;
  } else if (mix_distance_ < config_.mix_clear) {
    mix_armed_ticks_ = 0;
  }  // inside the hysteresis band: hold the armed count.

  metrics.mix_distance.Set(mix_distance_);
  metrics.cusum.Set(cusum_);

  DriftVerdict verdict;
  if (pending_new_queries_ > 0) {
    verdict.kind = DriftKind::kSchemaChange;
    verdict.magnitude = pending_new_queries_;
    verdict.reason = std::to_string(pending_new_queries_) +
                     " structurally new queries since last adaptation";
    pending_new_queries_ = 0;
  } else if (cusum_ > config_.cusum_threshold) {
    verdict.kind = DriftKind::kCostInflation;
    verdict.magnitude = cusum_;
    verdict.reason = "cost CUSUM " + std::to_string(cusum_) + " > " +
                     std::to_string(config_.cusum_threshold);
  } else if (mix_armed_ticks_ >= config_.mix_patience) {
    verdict.kind = DriftKind::kMixShift;
    verdict.magnitude = mix_distance_;
    verdict.reason =
        "mix TV distance " + std::to_string(mix_distance_) + " > " +
        std::to_string(config_.mix_trigger) + " for " +
        std::to_string(mix_armed_ticks_) + " ticks";
  }
  if (verdict.triggered()) metrics.triggers.Add();
  return verdict;
}

void DriftMonitor::MarkAdapted() {
  baseline_mix_ = smoothed_;
  cusum_ = 0.0;
  cost_baseline_sum_ = 0.0;
  cost_baseline_count_ = 0;
  mix_armed_ticks_ = 0;
  mix_distance_ = 0.0;
  cooldown_left_ = config_.cooldown_ticks;
}

std::vector<std::vector<double>> DriftMonitor::RecentMixes(int k) const {
  std::vector<std::vector<double>> out;
  int start = std::max(0, static_cast<int>(history_.size()) - k);
  for (size_t i = static_cast<size_t>(start); i < history_.size(); ++i) {
    std::vector<double> mix = history_[i];
    mix.resize(smoothed_.size(), 0.0);
    out.push_back(std::move(mix));
  }
  return out;
}

}  // namespace lpa::autopilot
