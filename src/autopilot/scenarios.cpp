#include "autopilot/scenarios.h"

#include <algorithm>
#include <utility>

namespace lpa::autopilot {

namespace {

// Tick at which the non-stable scenarios inject their drift event. Late
// enough that the monitor's cost baseline and EWMA have settled.
constexpr int kOnsetTick = 15;
// Half-period of the diurnal square wave.
constexpr int kDiurnalPeriod = 20;

}  // namespace

const char* ScenarioName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kStable:
      return "stable";
    case ScenarioKind::kDiurnal:
      return "diurnal";
    case ScenarioKind::kFlashCrowd:
      return "flash-crowd";
    case ScenarioKind::kSchemaChange:
      return "schema-change";
    case ScenarioKind::kNoisyNeighbor:
      return "noisy-neighbor";
    case ScenarioKind::kForcedRegression:
      return "forced-regression";
  }
  return "unknown";
}

Result<ScenarioKind> ParseScenario(const std::string& name) {
  for (ScenarioKind kind : AllScenarios()) {
    if (name == ScenarioName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown drift scenario '" + name +
                                 "' (expected one of: stable, diurnal, "
                                 "flash-crowd, schema-change, noisy-neighbor, "
                                 "forced-regression)");
}

std::vector<ScenarioKind> AllScenarios() {
  return {ScenarioKind::kStable,        ScenarioKind::kDiurnal,
          ScenarioKind::kFlashCrowd,    ScenarioKind::kSchemaChange,
          ScenarioKind::kNoisyNeighbor, ScenarioKind::kForcedRegression};
}

DriftScenario::DriftScenario(ScenarioKind kind, const schema::Schema* schema,
                             const workload::Workload* workload, uint64_t seed)
    : kind_(kind),
      schema_(schema),
      workload_(workload),
      base_m_(workload->num_queries()),
      m_(workload->num_queries()),
      rng_(seed) {}

int DriftScenario::default_ticks() const {
  switch (kind_) {
    case ScenarioKind::kStable:
      return 60;
    case ScenarioKind::kDiurnal:
      return 2 * kDiurnalPeriod + kDiurnalPeriod / 2;  // two transitions
    default:
      return 40;
  }
}

std::vector<double> DriftScenario::DayMix() const {
  // Day traffic concentrates on the first half of the templates; absorbed
  // (post-schema-change) slots ride along hot so the new queries matter.
  std::vector<double> mix(static_cast<size_t>(m_), 0.08);
  for (int i = 0; i < base_m_ / 2; ++i) mix[static_cast<size_t>(i)] = 1.0;
  for (int i = base_m_; i < m_; ++i) mix[static_cast<size_t>(i)] = 1.0;
  return mix;
}

std::vector<double> DriftScenario::NightMix() const {
  std::vector<double> mix(static_cast<size_t>(m_), 0.08);
  for (int i = base_m_ / 2; i < base_m_; ++i) mix[static_cast<size_t>(i)] = 1.0;
  for (int i = base_m_; i < m_; ++i) mix[static_cast<size_t>(i)] = 1.0;
  return mix;
}

std::vector<double> DriftScenario::Jitter(std::vector<double> mix) {
  for (double& f : mix) f = std::max(0.0, f * rng_.Uniform(0.95, 1.05));
  return mix;
}

workload::QuerySpec DriftScenario::NovelQuery(int slot, int serial) const {
  // Clone an existing template into a fresh selectivity bucket with halved
  // scan selectivities: a distinct workload-state entry (Sec 3.2 parameter
  // bucketing) that still validates against the schema.
  workload::QuerySpec q = workload_->query(slot);
  q.name += "_novel" + std::to_string(serial);
  q.selectivity_bucket += 100 + serial;
  for (auto& scan : q.scans) {
    scan.selectivity = std::max(0.001, scan.selectivity * 0.5);
  }
  q.output_fraction = std::min(1.0, q.output_fraction * 2.0);
  return q;
}

ScenarioTick DriftScenario::Next() {
  ScenarioTick out;
  const int t = tick_++;
  switch (kind_) {
    case ScenarioKind::kStable:
      out.mix = Jitter(DayMix());
      break;

    case ScenarioKind::kDiurnal: {
      const bool night = (t / kDiurnalPeriod) % 2 == 1;
      out.mix = Jitter(night ? NightMix() : DayMix());
      out.drift_onset = t > 0 && t % kDiurnalPeriod == 0;
      break;
    }

    case ScenarioKind::kFlashCrowd:
    case ScenarioKind::kForcedRegression: {
      // A single template suddenly dominates (forced-regression uses the
      // same traffic shape; the sabotage happens in the retrain config).
      std::vector<double> mix = DayMix();
      if (t >= kOnsetTick) {
        for (double& f : mix) f = 0.05;
        mix[static_cast<size_t>(base_m_ - 1)] = 1.0;
        out.drift_onset = t == kOnsetTick;
      }
      out.mix = Jitter(std::move(mix));
      break;
    }

    case ScenarioKind::kSchemaChange: {
      if (t == kOnsetTick) {
        out.new_queries.push_back(NovelQuery(0, 1));
        out.new_queries.push_back(NovelQuery(base_m_ / 2, 2));
        m_ += static_cast<int>(out.new_queries.size());
        out.drift_onset = true;
      }
      out.mix = Jitter(DayMix());
      break;
    }

    case ScenarioKind::kNoisyNeighbor: {
      out.mix = Jitter(DayMix());
      out.contention_begins = t == kOnsetTick;
      out.drift_onset = t == kOnsetTick;
      break;
    }
  }
  if (out.drift_onset) ++drift_events_;
  return out;
}

void AutopilotOptions::Register(cli::FlagParser* parser) {
  parser->AddBool("autopilot",
                  "run the closed-loop autopilot against a drift scenario",
                  &autopilot);
  parser->AddString("drift-scenario",
                    "drift scenario: stable|diurnal|flash-crowd|schema-change|"
                    "noisy-neighbor|forced-regression",
                    &drift_scenario);
  parser->AddInt("autopilot-ticks",
                 "scenario ticks to simulate (0 = scenario default)",
                 &autopilot_ticks);
}

bool AutopilotOptions::Validate(std::string* error) const {
  if (autopilot_ticks < 0) {
    *error = "--autopilot-ticks must be >= 0";
    return false;
  }
  auto kind = Kind();
  if (!kind.ok()) {
    *error = kind.status().message();
    return false;
  }
  return true;
}

}  // namespace lpa::autopilot
