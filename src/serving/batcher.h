#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/matrix.h"
#include "nn/quantized.h"
#include "rl/dqn.h"

namespace lpa::serving {

/// \brief Cross-request inference batching: coalesces the Q-network
/// evaluations of concurrent Suggest rollouts against ONE model into single
/// `DqnAgent::QValuesBatch` matrix passes.
///
/// Protocol (leader/follower, one mutex): the first rollout to request
/// Q-values opens a batch and becomes its leader; it waits — bounded by the
/// time window AND by the number of rollouts currently active on this model
/// — for other rollouts to join, then closes the batch, runs the matrix
/// pass outside the lock, and publishes each row to its requester. Rollouts
/// that arrive while a batch is open join it and sleep until the leader
/// publishes. A lone rollout never waits: when no other rollout is active
/// the leader fires immediately, so the window only ever delays requests
/// that have someone to share a pass with.
///
/// Results are bit-identical to unbatched inference: QValuesBatch computes
/// every row independently with a fixed accumulation order, so membership
/// and order of a batch cannot change any row's values.
class InferenceBatcher {
 public:
  struct Config {
    /// Maximum rows per matrix pass; a full batch fires immediately.
    int max_batch = 8;
    /// Longest a leader waits for co-batchable rollouts to reach their next
    /// Q-evaluation. An upper bound, not a fixed delay: joins re-check the
    /// fire condition, so lockstep rollouts batch with microsecond waits.
    double window_seconds = 200e-6;
    /// When true the leader holds the batch for the FULL window (or until it
    /// fills) even while no other rollout is active — the bounded micro-batch
    /// wait for open-loop arrivals, where the next request is in flight on
    /// the network rather than visible in active_rollouts_. The default
    /// (false) keeps the closed-loop behavior: a lone rollout never waits.
    bool wait_for_window = false;
  };

  InferenceBatcher(const rl::DqnAgent* agent, Config config);

  /// \brief RAII activity marker: a rollout holds one of these for its whole
  /// suggestion so leaders know how many peers may still show up.
  class RolloutScope {
   public:
    explicit RolloutScope(InferenceBatcher* batcher) : batcher_(batcher) {
      batcher_->BeginRollout();
    }
    ~RolloutScope() { batcher_->EndRollout(); }
    RolloutScope(const RolloutScope&) = delete;
    RolloutScope& operator=(const RolloutScope&) = delete;

   private:
    InferenceBatcher* batcher_;
  };

  /// \brief Q-values of ALL actions at `state_enc` (indexed by global action
  /// id). Blocks until the batch containing this row has been evaluated.
  /// Must be called inside a RolloutScope.
  std::vector<double> AllQValues(const std::vector<double>& state_enc);

  int active_rollouts() const;

  /// \brief Route matrix passes through a quantized network instead of the
  /// agent (multi-head agents only — the quantized output row must already
  /// be indexed by global action id). Pass nullptr to restore the fp64 path.
  /// The pointer is borrowed and must outlive the batcher; ServingModel owns
  /// both and only flips this after its calibration gate passes.
  void set_quantized(const nn::QuantizedMlp* quantized) {
    quantized_ = quantized;
  }
  bool quantized() const { return quantized_ != nullptr; }

 private:
  /// One in-flight coalesced evaluation. Guarded by the batcher mutex except
  /// where noted; participants keep it alive via shared_ptr.
  struct Batch {
    std::vector<const std::vector<double>*> encs;
    nn::Matrix q;  // row i = all-action Q-values of encs[i]; valid once done
    bool done = false;
    std::condition_variable done_cv;
  };

  void BeginRollout();
  void EndRollout();

  const rl::DqnAgent* agent_;
  const nn::QuantizedMlp* quantized_ = nullptr;
  Config config_;
  mutable std::mutex mu_;
  /// Leader's wait for joiners; signalled on join and on EndRollout.
  std::condition_variable arrival_cv_;
  std::shared_ptr<Batch> open_;
  int active_rollouts_ = 0;
};

}  // namespace lpa::serving
