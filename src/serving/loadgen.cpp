#include "serving/loadgen.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/workload.h"

namespace lpa::serving {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-thread tally merged under a mutex at the end of the run.
struct ClientTally {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  std::vector<double> latencies;  // completed only
  std::map<uint64_t, uint64_t> completed_per_version;

  void Absorb(const SuggestResponse& response) {
    switch (response.status.code()) {
      case Status::Code::kOk:
        latencies.push_back(response.latency_seconds);
        ++completed_per_version[response.model_version];
        break;
      case Status::Code::kDeadlineExceeded:
        ++shed;
        break;
      case Status::Code::kUnavailable:
        ++rejected;
        break;
      default:
        ++failed;
        break;
    }
  }
};

void MergeInto(const ClientTally& tally, LoadgenReport* report,
               std::vector<double>* latencies) {
  report->submitted += tally.submitted;
  report->rejected += tally.rejected;
  report->shed += tally.shed;
  report->failed += tally.failed;
  report->completed += tally.latencies.size();
  for (const auto& [version, count] : tally.completed_per_version) {
    report->completed_per_version[version] += count;
  }
  latencies->insert(latencies->end(), tally.latencies.begin(),
                    tally.latencies.end());
}

ClientTally ClosedLoopClient(AdvisorServer* server,
                             const LoadgenOptions& options, uint64_t seed,
                             Clock::time_point end) {
  ClientTally tally;
  Rng rng(seed);
  while (Clock::now() < end) {
    std::vector<double> frequencies =
        workload::SampleUniformFrequencies(options.num_queries, &rng);
    ++tally.submitted;
    tally.Absorb(
        server->Suggest(std::move(frequencies), options.deadline_seconds));
  }
  return tally;
}

ClientTally OpenLoopDispatch(AdvisorServer* server,
                             const LoadgenOptions& options,
                             Clock::time_point start, Clock::time_point end) {
  LPA_CHECK(options.qps > 0.0);
  ClientTally tally;
  Rng rng(options.seed);
  const auto interarrival = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / options.qps));
  std::vector<std::future<SuggestResponse>> futures;
  Clock::time_point next = start;
  while (next < end) {
    std::this_thread::sleep_until(next);
    std::vector<double> frequencies =
        workload::SampleUniformFrequencies(options.num_queries, &rng);
    ++tally.submitted;
    futures.push_back(server->SubmitAsync(std::move(frequencies),
                                          options.deadline_seconds));
    next += interarrival;
  }
  // Every future resolves: accepted requests are drained by the workers,
  // rejected ones resolved at submission.
  for (auto& future : futures) tally.Absorb(future.get());
  return tally;
}

}  // namespace

LoadgenReport RunLoadgen(AdvisorServer* server, const LoadgenOptions& options,
                         const std::function<void()>& at_halftime) {
  LPA_CHECK(options.num_queries >= 1);
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));

  std::thread swapper;
  if (at_halftime) {
    Clock::time_point halftime =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        options.duration_seconds / 2.0));
    swapper = std::thread([at_halftime, halftime] {
      std::this_thread::sleep_until(halftime);
      at_halftime();
    });
  }

  LoadgenReport report;
  std::vector<double> latencies;
  if (options.open_loop) {
    MergeInto(OpenLoopDispatch(server, options, start, end), &report,
              &latencies);
  } else {
    std::vector<ClientTally> tallies(
        static_cast<size_t>(std::max(1, options.clients)));
    std::vector<std::thread> clients;
    clients.reserve(tallies.size());
    for (size_t i = 0; i < tallies.size(); ++i) {
      clients.emplace_back([&, i] {
        tallies[i] = ClosedLoopClient(server, options,
                                      HashCombine(options.seed, i), end);
      });
    }
    for (auto& client : clients) client.join();
    for (const auto& tally : tallies) MergeInto(tally, &report, &latencies);
  }
  if (swapper.joinable()) swapper.join();

  report.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  report.throughput_qps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.completed) / report.wall_seconds
          : 0.0;
  report.latency_mean = Mean(latencies);
  report.latency_p50 = Quantile(latencies, 0.50);
  report.latency_p95 = Quantile(latencies, 0.95);
  report.latency_p99 = Quantile(latencies, 0.99);
  report.latency_max =
      latencies.empty() ? 0.0
                        : *std::max_element(latencies.begin(), latencies.end());
  return report;
}

}  // namespace lpa::serving
