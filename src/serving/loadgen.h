#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "serving/server.h"

namespace lpa::serving {

/// \brief Traffic shape replayed against an AdvisorServer: random
/// workload-frequency vectors, either closed-loop (a fixed set of clients,
/// each waiting for its response before sending the next request — models
/// a capped connection pool) or open-loop (requests fired on a fixed
/// arrival schedule at a target QPS regardless of completions — models
/// internet traffic and exposes queueing collapse).
struct LoadgenOptions {
  bool open_loop = false;
  /// Closed-loop concurrent clients.
  int clients = 4;
  /// Open-loop target arrival rate (uniform interarrival spacing).
  double qps = 50.0;
  double duration_seconds = 2.0;
  /// Per-request deadline; <= 0 uses the server default.
  double deadline_seconds = -1.0;
  /// Seed of the frequency-vector stream (client i forks seed ^ i).
  uint64_t seed = 42;
  /// Dimension of the frequency vectors (the workload's query count).
  int num_queries = 1;
};

/// \brief Outcome counts and latency distribution of one loadgen run.
struct LoadgenReport {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  double wall_seconds = 0.0;
  /// Completed requests per wall-clock second.
  double throughput_qps = 0.0;
  /// Latency of completed requests (seconds); NaN when none completed.
  double latency_p50 = 0.0, latency_p95 = 0.0, latency_p99 = 0.0;
  double latency_mean = 0.0, latency_max = 0.0;
  /// Completed requests per model version (hot-swap accounting).
  std::map<uint64_t, uint64_t> completed_per_version;

  /// \brief Every submitted request was answered exactly once.
  bool CountersConsistent() const {
    uint64_t per_version_total = 0;
    for (const auto& [version, count] : completed_per_version) {
      per_version_total += count;
    }
    return submitted == completed + rejected + shed + failed &&
           per_version_total == completed;
  }
};

/// \brief Replay load against `server` for the configured duration.
/// `at_halftime` (optional) runs once on a side thread halfway through —
/// the hook used to hot-swap the model under load.
LoadgenReport RunLoadgen(AdvisorServer* server, const LoadgenOptions& options,
                         const std::function<void()>& at_halftime = nullptr);

}  // namespace lpa::serving
