#pragma once

#include <iostream>
#include <memory>
#include <mutex>

#include "advisor/advisor.h"
#include "costmodel/cost_model.h"
#include "nn/quantized.h"
#include "rl/offline_env.h"
#include "rl/trainer.h"
#include "serving/batcher.h"

namespace lpa::serving {

/// \brief Per-snapshot request for the quantized inference fast path.
///
/// When enabled, the ServingModel quantizes the agent's Q-network
/// (nn::QuantizedMlp: per-layer symmetric scales, integer accumulation) and
/// calibrates it on the state encodings visited by `calibration_rollouts`
/// greedy fp64 rollouts over seeded uniform frequency draws. The quantized
/// network only serves if it passes the calibration gate: its legal-action
/// argmax must match fp64 on 100% of the calibration set (same first-max
/// tie-break as Suggest). On any disagreement — or on a state-action-input
/// agent, whose quantized output rows would not be action-indexed — the
/// model falls back to the fp64 path and records the rejection.
struct QuantizeSpec {
  bool enabled = false;
  nn::QuantPrecision precision = nn::QuantPrecision::kInt8;
  /// Greedy rollouts whose visited states form the calibration set
  /// (each contributes tmax states).
  int calibration_rollouts = 8;
  /// Seed of the calibration frequency draws; fixed by default so the gate
  /// verdict for a given snapshot is reproducible.
  uint64_t calibration_seed = 0x9e11ab;
};

/// \brief One immutable servable model version: a trained (or
/// snapshot-restored) advisor, its own pricing environment, and the
/// inference batcher that coalesces concurrent rollouts against it.
///
/// Suggest runs the deterministic greedy inference rollout of Sec 6 — the
/// exact policy `PartitioningAdvisor::Suggest` serves with
/// `inference_extra_rollouts = 0` — with every Q-network evaluation routed
/// through the batcher. Results are bit-identical to the unbatched advisor
/// call for the same model and frequencies, at any batch size or worker
/// count. Thread-safe: the network weights are only read, the pricing
/// environment's cost cache is sharded and concurrent, and each request
/// prices states through its own incremental-cost tracker.
///
/// `schema` and `cost_model` are borrowed and must outlive the model.
class ServingModel {
 public:
  /// \brief Wrap an already-trained advisor (takes ownership).
  ServingModel(std::unique_ptr<advisor::PartitioningAdvisor> advisor,
               const costmodel::CostModel* cost_model,
               InferenceBatcher::Config batch = {},
               QuantizeSpec quantize = {});

  /// \brief Rebuild an advisor from (schema, workload, config) and restore
  /// `snapshot` into it — the hot-swap path: load a new training run's
  /// snapshot without stopping the server.
  static Result<std::shared_ptr<ServingModel>> FromSnapshot(
      const schema::Schema* schema, workload::Workload workload,
      advisor::AdvisorConfig config, const costmodel::CostModel* cost_model,
      std::istream& snapshot, InferenceBatcher::Config batch = {},
      QuantizeSpec quantize = {});

  /// \brief Greedy inference rollout for one frequency vector, with batched
  /// Q-evaluation. Safe to call from any number of threads.
  rl::InferenceResult Suggest(const std::vector<double>& frequencies);

  const advisor::PartitioningAdvisor& advisor() const { return *advisor_; }
  InferenceBatcher* batcher() { return &batcher_; }

  /// \brief Outcome of this model's quantization request.
  enum class QuantState {
    kOff,       ///< quantization not requested
    kActive,    ///< gate passed; Suggest serves through the integer path
    kRejected,  ///< gate failed (or unsupported agent mode); fp64 serves
  };
  QuantState quant_state() const { return quant_state_; }
  /// \brief Fraction of calibration states whose legal-action argmax matched
  /// fp64 (1.0 when active; < 1.0 explains a rejection; 0.0 when never
  /// evaluated).
  double calibration_agreement() const { return calibration_agreement_; }
  bool quantized() const { return quant_state_ == QuantState::kActive; }

 private:
  /// Quantize + calibration-gate; called from the ctor when requested.
  void TryQuantize(const QuantizeSpec& spec);

  std::unique_ptr<advisor::PartitioningAdvisor> advisor_;
  const costmodel::CostModel* cost_model_;
  /// Own pricing environment so snapshot-restored advisors (which never ran
  /// TrainOffline) serve directly.
  std::unique_ptr<rl::OfflineEnv> env_;
  InferenceBatcher batcher_;
  /// Owned integer network the batcher borrows while quant_state_ is active.
  std::unique_ptr<nn::QuantizedMlp> quantized_;
  QuantState quant_state_ = QuantState::kOff;
  double calibration_agreement_ = 0.0;
};

/// \brief A servable model together with the version its registry assigned.
/// The version lives in the registry entry, not the model, so one
/// ServingModel instance can be published into many registries — the
/// multi-tenant shared-base-model case, where each tenant namespace assigns
/// its own version numbers to the same underlying weights.
struct PublishedModel {
  std::shared_ptr<ServingModel> model;  ///< null before the first Publish
  uint64_t version = 0;
};

/// \brief Versioned model store with RCU-style atomic hot swap.
///
/// Publish assigns the next version and swaps the shared_ptr under a mutex;
/// readers (server workers) copy the pointer per request, so in-flight
/// requests finish on the version they started with while new requests see
/// the new model — zero downtime, zero dropped requests. Old versions are
/// destroyed when their last in-flight request releases them.
class ModelRegistry {
 public:
  /// \brief Make `model` the serving version; returns its assigned version
  /// number (1-based, strictly increasing per registry).
  uint64_t Publish(std::shared_ptr<ServingModel> model);

  /// \brief The current model and its version (null model before the first
  /// Publish).
  PublishedModel Current() const;

  uint64_t current_version() const;

 private:
  mutable std::mutex mu_;
  PublishedModel current_;
  uint64_t next_version_ = 1;
};

}  // namespace lpa::serving
