#pragma once

#include <iostream>
#include <memory>
#include <mutex>

#include "advisor/advisor.h"
#include "costmodel/cost_model.h"
#include "rl/offline_env.h"
#include "rl/trainer.h"
#include "serving/batcher.h"

namespace lpa::serving {

/// \brief One immutable servable model version: a trained (or
/// snapshot-restored) advisor, its own pricing environment, and the
/// inference batcher that coalesces concurrent rollouts against it.
///
/// Suggest runs the deterministic greedy inference rollout of Sec 6 — the
/// exact policy `PartitioningAdvisor::Suggest` serves with
/// `inference_extra_rollouts = 0` — with every Q-network evaluation routed
/// through the batcher. Results are bit-identical to the unbatched advisor
/// call for the same model and frequencies, at any batch size or worker
/// count. Thread-safe: the network weights are only read, the pricing
/// environment's cost cache is sharded and concurrent, and each request
/// prices states through its own incremental-cost tracker.
///
/// `schema` and `cost_model` are borrowed and must outlive the model.
class ServingModel {
 public:
  /// \brief Wrap an already-trained advisor (takes ownership).
  ServingModel(std::unique_ptr<advisor::PartitioningAdvisor> advisor,
               const costmodel::CostModel* cost_model,
               InferenceBatcher::Config batch = {});

  /// \brief Rebuild an advisor from (schema, workload, config) and restore
  /// `snapshot` into it — the hot-swap path: load a new training run's
  /// snapshot without stopping the server.
  static Result<std::shared_ptr<ServingModel>> FromSnapshot(
      const schema::Schema* schema, workload::Workload workload,
      advisor::AdvisorConfig config, const costmodel::CostModel* cost_model,
      std::istream& snapshot, InferenceBatcher::Config batch = {});

  /// \brief Greedy inference rollout for one frequency vector, with batched
  /// Q-evaluation. Safe to call from any number of threads.
  rl::InferenceResult Suggest(const std::vector<double>& frequencies);

  const advisor::PartitioningAdvisor& advisor() const { return *advisor_; }
  InferenceBatcher* batcher() { return &batcher_; }

 private:
  std::unique_ptr<advisor::PartitioningAdvisor> advisor_;
  const costmodel::CostModel* cost_model_;
  /// Own pricing environment so snapshot-restored advisors (which never ran
  /// TrainOffline) serve directly.
  std::unique_ptr<rl::OfflineEnv> env_;
  InferenceBatcher batcher_;
};

/// \brief A servable model together with the version its registry assigned.
/// The version lives in the registry entry, not the model, so one
/// ServingModel instance can be published into many registries — the
/// multi-tenant shared-base-model case, where each tenant namespace assigns
/// its own version numbers to the same underlying weights.
struct PublishedModel {
  std::shared_ptr<ServingModel> model;  ///< null before the first Publish
  uint64_t version = 0;
};

/// \brief Versioned model store with RCU-style atomic hot swap.
///
/// Publish assigns the next version and swaps the shared_ptr under a mutex;
/// readers (server workers) copy the pointer per request, so in-flight
/// requests finish on the version they started with while new requests see
/// the new model — zero downtime, zero dropped requests. Old versions are
/// destroyed when their last in-flight request releases them.
class ModelRegistry {
 public:
  /// \brief Make `model` the serving version; returns its assigned version
  /// number (1-based, strictly increasing per registry).
  uint64_t Publish(std::shared_ptr<ServingModel> model);

  /// \brief The current model and its version (null model before the first
  /// Publish).
  PublishedModel Current() const;

  uint64_t current_version() const;

 private:
  mutable std::mutex mu_;
  PublishedModel current_;
  uint64_t next_version_ = 1;
};

}  // namespace lpa::serving
