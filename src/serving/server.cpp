#include "serving/server.h"

#include <utility>

#include "telemetry/registry.h"
#include "util/logging.h"

namespace lpa::serving {

namespace {

struct ServerMetrics {
  telemetry::Counter& submitted;
  telemetry::Counter& completed;
  telemetry::Counter& rejected;
  telemetry::Counter& shed;
  telemetry::Counter& failed;
  telemetry::Gauge& queue_depth;
  telemetry::Histogram& latency;
  telemetry::Histogram& queue_wait;

  static ServerMetrics& Get() {
    auto& reg = telemetry::MetricsRegistry::Global();
    static ServerMetrics* m = new ServerMetrics{
        reg.GetCounter("serving.submitted.count"),
        reg.GetCounter("serving.completed.count"),
        reg.GetCounter("serving.rejected.count"),
        reg.GetCounter("serving.shed.count"),
        reg.GetCounter("serving.failed.count"),
        reg.GetGauge("serving.queue_depth.count"),
        reg.GetHistogram("serving.latency.seconds",
                         telemetry::Histogram::LatencyBounds()),
        reg.GetHistogram("serving.queue_wait.seconds",
                         telemetry::Histogram::LatencyBounds())};
    return *m;
  }
};

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

AdvisorServer::AdvisorServer(ModelRegistry* registry, ServerConfig config)
    : registry_(registry), config_(config) {
  LPA_CHECK(config_.worker_threads >= 0);
  LPA_CHECK(config_.queue_capacity >= 1);
}

AdvisorServer::~AdvisorServer() { Stop(StopMode::kDrain); }

Status AdvisorServer::Start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (running_) return Status::FailedPrecondition("server already running");
  queue_ =
      std::make_unique<BoundedQueue<PendingRequest>>(config_.queue_capacity);
  running_ = true;
  workers_.reserve(static_cast<size_t>(config_.worker_threads));
  for (int i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void AdvisorServer::Stop(StopMode mode) {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!running_) return;
    running_ = false;  // admission now rejects; workers keep draining
    workers = std::move(workers_);
    workers_.clear();
  }
  queue_->Close();  // wakes workers parked on the empty queue
  if (mode == StopMode::kAbort) {
    // Grab what no worker has picked up yet and fail it explicitly; workers
    // racing us simply serve those requests instead, which is also fine.
    for (PendingRequest& request : queue_->DrainRemaining()) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().failed.Add();
      Respond(&request,
              SuggestResponse{Status::Unavailable("server stopped"), 0, {},
                              0.0, 0.0});
    }
  }
  for (std::thread& worker : workers) worker.join();
  if (mode == StopMode::kDrain) {
    // With zero workers nothing drains the queue; fail leftovers rather
    // than abandon their futures.
    for (PendingRequest& request : queue_->DrainRemaining()) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().failed.Add();
      Respond(&request,
              SuggestResponse{Status::Unavailable("server stopped"), 0, {},
                              0.0, 0.0});
    }
  }
  ServerMetrics::Get().queue_depth.Set(0.0);
}

bool AdvisorServer::running() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return running_;
}

std::future<SuggestResponse> AdvisorServer::SubmitAsync(
    std::vector<double> frequencies, double deadline_seconds) {
  return SubmitAsync(nullptr, std::move(frequencies), deadline_seconds,
                     nullptr);
}

std::future<SuggestResponse> AdvisorServer::SubmitAsync(
    ModelRegistry* registry, std::vector<double> frequencies,
    double deadline_seconds, RequestSink* sink) {
  auto& metrics = ServerMetrics::Get();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  metrics.submitted.Add();

  PendingRequest request;
  request.frequencies = std::move(frequencies);
  request.registry = registry;
  request.sink = sink;
  request.submitted_at = Clock::now();
  double deadline =
      deadline_seconds < 0.0 ? config_.default_deadline_seconds
                             : deadline_seconds;
  request.deadline = deadline > 0.0
                         ? request.submitted_at +
                               std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(deadline))
                         : Clock::time_point::max();
  std::future<SuggestResponse> future = request.promise.get_future();

  std::lock_guard<std::mutex> lock(state_mu_);
  Status reject;
  if (!running_) {
    reject = Status::Unavailable("server not running");
  } else {
    switch (queue_->TryPush(request)) {
      case BoundedQueue<PendingRequest>::PushResult::kOk:
        metrics.queue_depth.Add(1.0);
        return future;
      case BoundedQueue<PendingRequest>::PushResult::kFull:
        reject = Status::Unavailable("admission control: request queue full");
        break;
      case BoundedQueue<PendingRequest>::PushResult::kClosed:
        reject = Status::Unavailable("server stopping");
        break;
    }
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  metrics.rejected.Add();
  Respond(&request, SuggestResponse{reject, 0, {}, 0.0, 0.0});
  return future;
}

SuggestResponse AdvisorServer::Suggest(std::vector<double> frequencies,
                                       double deadline_seconds) {
  return SubmitAsync(std::move(frequencies), deadline_seconds).get();
}

void AdvisorServer::WorkerLoop() {
  auto& metrics = ServerMetrics::Get();
  PendingRequest request;
  while (queue_->Pop(&request)) {
    metrics.queue_depth.Add(-1.0);
    const Clock::time_point picked_up = Clock::now();
    const double queue_seconds = Seconds(picked_up - request.submitted_at);
    metrics.queue_wait.Observe(queue_seconds);

    if (picked_up > request.deadline) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      metrics.shed.Add();
      Respond(&request,
              SuggestResponse{
                  Status::DeadlineExceeded("request deadline passed in queue"),
                  0, {}, Seconds(Clock::now() - request.submitted_at),
                  queue_seconds});
      continue;
    }

    ModelRegistry* registry =
        request.registry != nullptr ? request.registry : registry_;
    PublishedModel published =
        registry != nullptr ? registry->Current() : PublishedModel{};
    if (published.model == nullptr) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      metrics.failed.Add();
      Respond(&request,
              SuggestResponse{
                  Status::FailedPrecondition("no model published"), 0, {},
                  Seconds(Clock::now() - request.submitted_at),
                  queue_seconds});
      continue;
    }

    // The shared_ptr keeps this version alive through the rollout even if
    // the registry publishes a replacement meanwhile (RCU hot swap).
    SuggestResponse response;
    response.status = Status::OK();
    response.model_version = published.version;
    response.result = published.model->Suggest(request.frequencies);
    response.latency_seconds = Seconds(Clock::now() - request.submitted_at);
    response.queue_seconds = queue_seconds;
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics.completed.Add();
    metrics.latency.Observe(response.latency_seconds);
    Respond(&request, std::move(response));
  }
}

void AdvisorServer::Respond(PendingRequest* request,
                            SuggestResponse response) {
  if (request->sink != nullptr) {
    // Classify by the status the caller sees — the same buckets the loadgen
    // tallies client-side — so per-tenant sinks and client counts agree.
    switch (response.status.code()) {
      case Status::Code::kOk:
        request->sink->completed.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::Code::kDeadlineExceeded:
        request->sink->shed.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::Code::kUnavailable:
      case Status::Code::kResourceExhausted:
        request->sink->rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        request->sink->failed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  request->promise.set_value(std::move(response));
}

AdvisorServer::Stats AdvisorServer::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lpa::serving
