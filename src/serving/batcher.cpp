#include "serving/batcher.h"

#include <algorithm>
#include <chrono>

#include "telemetry/registry.h"
#include "util/logging.h"

namespace lpa::serving {

namespace {

struct BatcherMetrics {
  telemetry::Counter& batches;
  telemetry::Counter& batched_rows;
  telemetry::Histogram& batch_rows;

  static BatcherMetrics& Get() {
    auto& reg = telemetry::MetricsRegistry::Global();
    static BatcherMetrics* m = new BatcherMetrics{
        reg.GetCounter("serving.batches.count"),
        reg.GetCounter("serving.batched_rows.count"),
        reg.GetHistogram("serving.batch_rows.count",
                         {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})};
    return *m;
  }
};

}  // namespace

InferenceBatcher::InferenceBatcher(const rl::DqnAgent* agent, Config config)
    : agent_(agent), config_(config) {
  LPA_CHECK(config_.max_batch >= 1);
}

void InferenceBatcher::BeginRollout() {
  std::lock_guard<std::mutex> lock(mu_);
  ++active_rollouts_;
}

void InferenceBatcher::EndRollout() {
  std::lock_guard<std::mutex> lock(mu_);
  --active_rollouts_;
  // A leader may be waiting for this rollout to reach its next Q-evaluation;
  // it never will, so let the leader re-check its fire condition.
  arrival_cv_.notify_all();
}

int InferenceBatcher::active_rollouts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_rollouts_;
}

std::vector<double> InferenceBatcher::AllQValues(
    const std::vector<double>& state_enc) {
  std::unique_lock<std::mutex> lock(mu_);
  if (open_ != nullptr) {
    // Join the open batch as a follower and sleep until the leader publishes.
    std::shared_ptr<Batch> batch = open_;
    const size_t my_row = batch->encs.size();
    batch->encs.push_back(&state_enc);
    arrival_cv_.notify_all();  // leader re-checks size / fire condition
    batch->done_cv.wait(lock, [&] { return batch->done; });
    const double* row = batch->q.row(my_row);
    return std::vector<double>(row, row + batch->q.cols());
  }

  // Become the leader of a fresh batch.
  std::shared_ptr<Batch> batch = std::make_shared<Batch>();
  batch->encs.push_back(&state_enc);
  open_ = batch;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(
                                std::max(0.0, config_.window_seconds)));
  // Wait for joiners only while some other active rollout is not yet in the
  // batch (or, with wait_for_window, unconditionally — open-loop arrivals
  // are invisible until they land); a full batch or an exhausted window
  // fires regardless.
  while (static_cast<int>(batch->encs.size()) < config_.max_batch &&
         (config_.wait_for_window ||
          active_rollouts_ > static_cast<int>(batch->encs.size()))) {
    if (arrival_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  open_.reset();  // close: late arrivals open their own batch

  // Stack the rows while still holding the lock (joins mutated encs under
  // it; followers are asleep and their encodings outlive the wait), then
  // run the matrix pass unlocked so other batches can form meanwhile.
  nn::Matrix encs_matrix(batch->encs.size(), state_enc.size());
  for (size_t i = 0; i < batch->encs.size(); ++i) {
    std::copy(batch->encs[i]->begin(), batch->encs[i]->end(),
              encs_matrix.row(i));
  }
  lock.unlock();
  nn::Matrix q = quantized_ != nullptr ? quantized_->Forward(encs_matrix)
                                       : agent_->QValuesBatch(encs_matrix);

  auto& metrics = BatcherMetrics::Get();
  metrics.batches.Add();
  metrics.batched_rows.Add(encs_matrix.rows());
  metrics.batch_rows.Observe(static_cast<double>(encs_matrix.rows()));

  lock.lock();
  batch->q = std::move(q);
  batch->done = true;
  batch->done_cv.notify_all();
  const double* row = batch->q.row(0);
  return std::vector<double>(row, row + batch->q.cols());
}

}  // namespace lpa::serving
