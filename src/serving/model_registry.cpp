#include "serving/model_registry.h"

#include <chrono>
#include <utility>

#include "advisor/serialization.h"
#include "telemetry/registry.h"
#include "util/logging.h"

namespace lpa::serving {

namespace {

struct RegistryMetrics {
  telemetry::Counter& hot_swaps;
  telemetry::Counter& snapshot_load_failures;
  /// Publish latency in microseconds: how long a tenant's hot swap held the
  /// registry (fleet-wide swap observability).
  telemetry::Histogram& swap_micros;

  static RegistryMetrics& Get() {
    auto& reg = telemetry::MetricsRegistry::Global();
    static RegistryMetrics* m = new RegistryMetrics{
        reg.GetCounter("serving.hot_swaps.count"),
        reg.GetCounter("serving.snapshot_load_failures.count"),
        reg.GetHistogram("serving.swap_micros",
                         telemetry::Histogram::ExponentialBounds(1.0, 2.0,
                                                                 20))};
    return *m;
  }
};

}  // namespace

ServingModel::ServingModel(
    std::unique_ptr<advisor::PartitioningAdvisor> advisor,
    const costmodel::CostModel* cost_model, InferenceBatcher::Config batch)
    : advisor_(std::move(advisor)),
      cost_model_(cost_model),
      env_(std::make_unique<rl::OfflineEnv>(cost_model_,
                                            &advisor_->workload())),
      batcher_(advisor_->agent(), batch) {}

Result<std::shared_ptr<ServingModel>> ServingModel::FromSnapshot(
    const schema::Schema* schema, workload::Workload workload,
    advisor::AdvisorConfig config, const costmodel::CostModel* cost_model,
    std::istream& snapshot, InferenceBatcher::Config batch) {
  auto advisor = std::make_unique<advisor::PartitioningAdvisor>(
      schema, std::move(workload), std::move(config));
  if (Status st = advisor::LoadAgentSnapshot(snapshot, advisor->agent());
      !st.ok()) {
    RegistryMetrics::Get().snapshot_load_failures.Add();
    return st;
  }
  return std::make_shared<ServingModel>(std::move(advisor), cost_model, batch);
}

rl::InferenceResult ServingModel::Suggest(
    const std::vector<double>& frequencies) {
  InferenceBatcher::RolloutScope scope(&batcher_);
  const partition::Featurizer& featurizer = advisor_->featurizer();
  const partition::ActionSpace& actions = advisor_->actions();
  const rl::DqnAgent& agent = *advisor_->agent();

  // Mirror EpisodeTrainer::Infer step for step (tracker-backed objective,
  // s0 priced first, strict-< best tracking, GreedyAction's first-max
  // tie-break) so the served result is bit-identical to Advisor::Suggest;
  // only the Q-evaluation detours through the batcher.
  rl::EpisodeTrainer::StateObjective objective =
      rl::MakeEnvObjective(env_.get(), &frequencies, nullptr)();
  partition::PartitioningState state = partition::PartitioningState::Initial(
      &advisor_->schema(), &advisor_->edges());
  rl::InferenceResult result{state, objective(state), {}};
  const int tmax = agent.config().tmax;
  for (int t = 0; t < tmax; ++t) {
    std::vector<double> enc = featurizer.EncodeState(state, frequencies);
    std::vector<int> legal = actions.LegalActions(state);
    std::vector<double> q = batcher_.AllQValues(enc);
    size_t best = 0;
    for (size_t i = 1; i < legal.size(); ++i) {
      if (q[static_cast<size_t>(legal[i])] >
          q[static_cast<size_t>(legal[best])]) {
        best = i;
      }
    }
    int action = legal[best];
    LPA_CHECK(actions.Apply(action, &state).ok());
    result.actions.push_back(action);
    double cost = objective(state);
    if (cost < result.best_cost) {
      result.best_cost = cost;
      result.best_state = state;
    }
  }
  return result;
}

uint64_t ModelRegistry::Publish(std::shared_ptr<ServingModel> model) {
  LPA_CHECK(model != nullptr);
  const auto started = std::chrono::steady_clock::now();
  uint64_t version;
  bool swapped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    version = next_version_++;
    swapped = current_.model != nullptr;
    current_ = PublishedModel{std::move(model), version};
  }
  auto& metrics = RegistryMetrics::Get();
  if (swapped) metrics.hot_swaps.Add();
  metrics.swap_micros.Observe(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - started)
                                  .count());
  return version;
}

PublishedModel ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t ModelRegistry::current_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.model == nullptr ? 0 : current_.version;
}

}  // namespace lpa::serving
