#include "serving/model_registry.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "advisor/serialization.h"
#include "nn/quantized.h"
#include "telemetry/registry.h"
#include "util/logging.h"

namespace lpa::serving {

namespace {

struct RegistryMetrics {
  telemetry::Counter& hot_swaps;
  telemetry::Counter& snapshot_load_failures;
  /// Publish latency in microseconds: how long a tenant's hot swap held the
  /// registry (fleet-wide swap observability).
  telemetry::Histogram& swap_micros;
  /// Quantization gate observability: last gate's agreement fraction,
  /// rejected requests, models currently serving the integer path.
  telemetry::Gauge& quant_agreement;
  telemetry::Counter& quant_rejects;
  telemetry::Counter& quant_activations;

  static RegistryMetrics& Get() {
    auto& reg = telemetry::MetricsRegistry::Global();
    static RegistryMetrics* m = new RegistryMetrics{
        reg.GetCounter("serving.hot_swaps.count"),
        reg.GetCounter("serving.snapshot_load_failures.count"),
        reg.GetHistogram("serving.swap_micros",
                         telemetry::Histogram::ExponentialBounds(1.0, 2.0,
                                                                 20)),
        reg.GetGauge("serving.quant_agreement.value"),
        reg.GetCounter("serving.quant_rejects.count"),
        reg.GetCounter("serving.quant_activations.count")};
    return *m;
  }
};

}  // namespace

ServingModel::ServingModel(
    std::unique_ptr<advisor::PartitioningAdvisor> advisor,
    const costmodel::CostModel* cost_model, InferenceBatcher::Config batch,
    QuantizeSpec quantize)
    : advisor_(std::move(advisor)),
      cost_model_(cost_model),
      env_(std::make_unique<rl::OfflineEnv>(cost_model_,
                                            &advisor_->workload())),
      batcher_(advisor_->agent(), batch) {
  if (quantize.enabled) TryQuantize(quantize);
}

Result<std::shared_ptr<ServingModel>> ServingModel::FromSnapshot(
    const schema::Schema* schema, workload::Workload workload,
    advisor::AdvisorConfig config, const costmodel::CostModel* cost_model,
    std::istream& snapshot, InferenceBatcher::Config batch,
    QuantizeSpec quantize) {
  auto advisor = std::make_unique<advisor::PartitioningAdvisor>(
      schema, std::move(workload), std::move(config));
  if (Status st = advisor::LoadAgentSnapshot(snapshot, advisor->agent());
      !st.ok()) {
    RegistryMetrics::Get().snapshot_load_failures.Add();
    return st;
  }
  return std::make_shared<ServingModel>(std::move(advisor), cost_model, batch,
                                        quantize);
}

void ServingModel::TryQuantize(const QuantizeSpec& spec) {
  auto& metrics = RegistryMetrics::Get();
  const rl::DqnAgent& agent = *advisor_->agent();
  // The integer path replaces QValuesBatch, whose rows must be indexed by
  // global action id — only the multi-head formulation has that output shape.
  if (agent.config().mode != rl::QNetworkMode::kMultiHead) {
    quant_state_ = QuantState::kRejected;
    metrics.quant_rejects.Add();
    return;
  }

  // Calibration set: every state visited by greedy fp64 rollouts over seeded
  // uniform frequency draws — exactly the encoding distribution Suggest
  // walks, so the activation scales (and the gate) see serving-shaped
  // inputs, not synthetic ones.
  const partition::Featurizer& featurizer = advisor_->featurizer();
  const partition::ActionSpace& actions = advisor_->actions();
  const int tmax = agent.config().tmax;
  const int rollouts = std::max(1, spec.calibration_rollouts);
  Rng rng(spec.calibration_seed);
  std::vector<std::vector<double>> encs;
  std::vector<std::vector<int>> legals;
  encs.reserve(static_cast<size_t>(rollouts) * static_cast<size_t>(tmax));
  for (int r = 0; r < rollouts; ++r) {
    std::vector<double> freqs = workload::SampleUniformFrequencies(
        advisor_->workload().num_queries(), &rng);
    partition::PartitioningState state = partition::PartitioningState::Initial(
        &advisor_->schema(), &advisor_->edges());
    for (int t = 0; t < tmax; ++t) {
      std::vector<double> enc = featurizer.EncodeState(state, freqs);
      std::vector<int> legal = actions.LegalActions(state);
      const int action = agent.GreedyAction(enc, legal);
      encs.push_back(std::move(enc));
      legals.push_back(std::move(legal));
      LPA_CHECK(actions.Apply(action, &state).ok());
    }
  }

  nn::Matrix calibration(encs.size(), encs[0].size());
  for (size_t i = 0; i < encs.size(); ++i) {
    std::copy(encs[i].begin(), encs[i].end(), calibration.row(i));
  }
  Result<nn::QuantizedMlp> quantized = nn::QuantizedMlp::Quantize(
      agent.q_network(), calibration, spec.precision);
  if (!quantized.ok()) {
    quant_state_ = QuantState::kRejected;
    metrics.quant_rejects.Add();
    return;
  }

  // Gate: the quantized legal-action argmax must match fp64 on EVERY
  // calibration state (first-max tie-break, the exact Suggest selection).
  const nn::Matrix q_fp = agent.QValuesBatch(calibration);
  const nn::Matrix q_int = quantized->Forward(calibration);
  size_t agree = 0;
  auto legal_argmax = [](const nn::Matrix& q, size_t r,
                         const std::vector<int>& legal) {
    size_t best = 0;
    for (size_t i = 1; i < legal.size(); ++i) {
      if (q.at(r, static_cast<size_t>(legal[i])) >
          q.at(r, static_cast<size_t>(legal[best]))) {
        best = i;
      }
    }
    return legal[best];
  };
  for (size_t i = 0; i < encs.size(); ++i) {
    if (legal_argmax(q_fp, i, legals[i]) == legal_argmax(q_int, i, legals[i])) {
      ++agree;
    }
  }
  calibration_agreement_ =
      static_cast<double>(agree) / static_cast<double>(encs.size());
  metrics.quant_agreement.Set(calibration_agreement_);
  if (agree != encs.size()) {
    quant_state_ = QuantState::kRejected;
    metrics.quant_rejects.Add();
    return;
  }
  quantized_ = std::make_unique<nn::QuantizedMlp>(std::move(quantized).value());
  batcher_.set_quantized(quantized_.get());
  quant_state_ = QuantState::kActive;
  metrics.quant_activations.Add();
}

rl::InferenceResult ServingModel::Suggest(
    const std::vector<double>& frequencies) {
  InferenceBatcher::RolloutScope scope(&batcher_);
  const partition::Featurizer& featurizer = advisor_->featurizer();
  const partition::ActionSpace& actions = advisor_->actions();
  const rl::DqnAgent& agent = *advisor_->agent();

  // Mirror EpisodeTrainer::Infer step for step (tracker-backed objective,
  // s0 priced first, strict-< best tracking, GreedyAction's first-max
  // tie-break) so the served result is bit-identical to Advisor::Suggest;
  // only the Q-evaluation detours through the batcher.
  rl::EpisodeTrainer::StateObjective objective =
      rl::MakeEnvObjective(env_.get(), &frequencies, nullptr)();
  partition::PartitioningState state = partition::PartitioningState::Initial(
      &advisor_->schema(), &advisor_->edges());
  rl::InferenceResult result{state, objective(state), {}};
  const int tmax = agent.config().tmax;
  for (int t = 0; t < tmax; ++t) {
    std::vector<double> enc = featurizer.EncodeState(state, frequencies);
    std::vector<int> legal = actions.LegalActions(state);
    std::vector<double> q = batcher_.AllQValues(enc);
    size_t best = 0;
    for (size_t i = 1; i < legal.size(); ++i) {
      if (q[static_cast<size_t>(legal[i])] >
          q[static_cast<size_t>(legal[best])]) {
        best = i;
      }
    }
    int action = legal[best];
    LPA_CHECK(actions.Apply(action, &state).ok());
    result.actions.push_back(action);
    double cost = objective(state);
    if (cost < result.best_cost) {
      result.best_cost = cost;
      result.best_state = state;
    }
  }
  return result;
}

uint64_t ModelRegistry::Publish(std::shared_ptr<ServingModel> model) {
  LPA_CHECK(model != nullptr);
  const auto started = std::chrono::steady_clock::now();
  uint64_t version;
  bool swapped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    version = next_version_++;
    swapped = current_.model != nullptr;
    current_ = PublishedModel{std::move(model), version};
  }
  auto& metrics = RegistryMetrics::Get();
  if (swapped) metrics.hot_swaps.Add();
  metrics.swap_micros.Observe(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - started)
                                  .count());
  return version;
}

PublishedModel ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t ModelRegistry::current_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.model == nullptr ? 0 : current_.version;
}

}  // namespace lpa::serving
