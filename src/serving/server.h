#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "rl/trainer.h"
#include "serving/model_registry.h"
#include "serving/request_queue.h"
#include "util/status.h"

namespace lpa::serving {

struct ServerConfig {
  /// Worker threads pulling from the request queue. 0 is allowed (requests
  /// queue but are never served — useful for admission-control tests and
  /// staged bring-up).
  int worker_threads = 2;
  /// Bounded request queue; a full queue rejects (admission control).
  size_t queue_capacity = 256;
  /// Cross-request batching of Q-network passes (per model).
  InferenceBatcher::Config batch;
  /// Deadline applied to requests that do not carry their own; <= 0 = none.
  /// Requests whose deadline passed before a worker picked them up are shed
  /// with DeadlineExceeded instead of wasting inference on a stale answer.
  double default_deadline_seconds = 0.0;
};

/// \brief One served suggestion (or the reason there is none).
struct SuggestResponse {
  Status status;
  /// Model version that produced the result (0 when rejected/shed).
  uint64_t model_version = 0;
  /// Present iff status.ok().
  std::optional<rl::InferenceResult> result;
  /// Submit-to-completion wall time.
  double latency_seconds = 0.0;
  /// Portion of the latency spent queued before a worker picked it up.
  double queue_seconds = 0.0;
};

/// \brief Per-caller outcome accounting, written by the server when each
/// request resolves (classified by the response status the caller sees).
/// The fleet router attaches one sink per tenant so per-tenant fairness is
/// observable without wrapping every future. Must outlive every request
/// submitted against it.
struct RequestSink {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};  ///< Unavailable / ResourceExhausted
  std::atomic<uint64_t> shed{0};      ///< DeadlineExceeded
  std::atomic<uint64_t> failed{0};    ///< everything else non-OK
};

/// \brief The advisor serving layer: worker threads pull Suggest requests
/// from a bounded MPMC queue, resolve the current model from the registry
/// (RCU hot swap), and run batched inference rollouts.
///
/// Every submitted request gets exactly one response — completed, rejected
/// at admission (queue full / server stopped), shed past its deadline, or
/// failed (no model published / aborted shutdown); futures are never
/// abandoned. Stop(kDrain) stops admissions, lets workers finish everything
/// queued, and joins them; Stop(kAbort) fails whatever is still queued.
/// The server is restartable: Start after Stop begins a fresh queue.
class AdvisorServer {
 public:
  /// \brief `registry` is the default model namespace for requests that do
  /// not carry their own; it may be null when every request routes to an
  /// explicit registry (fleet shards), in which case registry-less requests
  /// fail with FailedPrecondition.
  AdvisorServer(ModelRegistry* registry, ServerConfig config);
  ~AdvisorServer();  // Stop(kDrain)

  AdvisorServer(const AdvisorServer&) = delete;
  AdvisorServer& operator=(const AdvisorServer&) = delete;

  /// \brief Spawn the workers and open admissions. Fails if already running.
  Status Start();

  enum class StopMode {
    kDrain,  ///< serve everything already admitted, then shut down
    kAbort,  ///< fail queued-but-unstarted requests with Unavailable
  };
  /// \brief Graceful shutdown; idempotent, safe without a prior Start.
  void Stop(StopMode mode = StopMode::kDrain);

  bool running() const;

  /// \brief Submit one suggestion request. `deadline_seconds` < 0 uses the
  /// config default; 0 disables the deadline. The returned future always
  /// resolves — immediately (with a rejection) when admission fails.
  std::future<SuggestResponse> SubmitAsync(std::vector<double> frequencies,
                                           double deadline_seconds = -1.0);

  /// \brief Multi-tenant submit: resolve the model from `registry` (the
  /// tenant's namespace) instead of the server default, and record the
  /// outcome into `sink` (optional). Both pointers must outlive the
  /// response. Null `registry` falls back to the server default.
  std::future<SuggestResponse> SubmitAsync(ModelRegistry* registry,
                                           std::vector<double> frequencies,
                                           double deadline_seconds,
                                           RequestSink* sink);

  /// \brief Blocking convenience wrapper around SubmitAsync.
  SuggestResponse Suggest(std::vector<double> frequencies,
                          double deadline_seconds = -1.0);

  /// \brief Monotonic request accounting; submitted is always the sum of
  /// the other four once every returned future has resolved.
  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0;  ///< admission control (queue full / not running)
    uint64_t shed = 0;      ///< deadline passed while queued
    uint64_t failed = 0;    ///< no model / aborted shutdown
  };
  Stats stats() const;

  const ServerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingRequest {
    std::vector<double> frequencies;
    Clock::time_point submitted_at;
    Clock::time_point deadline;  // time_point::max() = none
    std::promise<SuggestResponse> promise;
    /// Tenant namespace to serve from; null = the server's default registry.
    ModelRegistry* registry = nullptr;
    /// Per-tenant outcome accounting; null = none.
    RequestSink* sink = nullptr;
  };

  void WorkerLoop();
  void Respond(PendingRequest* request, SuggestResponse response);

  ModelRegistry* registry_;
  ServerConfig config_;

  /// Guards running_ and queue_ replacement (Start/Stop/Submit admission).
  mutable std::mutex state_mu_;
  bool running_ = false;
  std::unique_ptr<BoundedQueue<PendingRequest>> queue_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> failed_{0};
};

}  // namespace lpa::serving
