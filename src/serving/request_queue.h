#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace lpa::serving {

/// \brief Bounded MPMC queue with admission control and clean shutdown.
///
/// Producers (request submitters) call TryPush, which never blocks: a full
/// queue is an admission-control rejection, not backpressure — the caller
/// turns kFull into an immediate reject-with-status response. Consumers
/// (server workers) block in Pop until an item arrives or the queue is
/// closed.
///
/// Shutdown protocol: Close() marks the queue closed and wakes every blocked
/// consumer via the condition variable — there is deliberately no timed wait
/// anywhere, so workers parked on an empty queue exit immediately on Stop()
/// instead of spinning on spurious timeouts. After Close(), Pop keeps
/// returning queued items until the queue is empty (graceful drain) and only
/// then returns false; DrainRemaining() lets an aborting caller grab the
/// leftovers instead and fail them explicitly, so no request is ever
/// silently dropped.
template <typename T>
class BoundedQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// \brief Enqueue without blocking. Moves from `item` only on kOk.
  PushResult TryPush(T& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) return PushResult::kFull;
    items_.push_back(std::move(item));
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// \brief Block until an item is available (true) or the queue is closed
  /// and drained (false, the consumer should exit).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// \brief Refuse further pushes and wake every blocked consumer. Queued
  /// items stay poppable (drain); idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  /// \brief After Close(): take whatever consumers have not popped yet, so
  /// the caller can fail those requests instead of processing them.
  std::vector<T> DrainRemaining() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> remaining;
    remaining.reserve(items_.size());
    while (!items_.empty()) {
      remaining.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return remaining;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace lpa::serving
