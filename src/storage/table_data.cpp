#include "storage/table_data.h"

namespace lpa::storage {

void TableData::Seal() {
  if (sealed_) return;
  encoded_.clear();
  encoded_.reserve(columns_.size() + 1);
  for (auto& col : columns_) {
    encoded_.push_back(EncodedColumn::Encode(col));
    col.clear();
    col.shrink_to_fit();
  }
  encoded_.push_back(EncodedColumn::Encode(rids_));
  rids_.clear();
  rids_.shrink_to_fit();
  sealed_ = true;
}

void TableData::Thaw() {
  if (!sealed_) return;
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c] = encoded_[c].Decode();
  rids_ = encoded_.back().Decode();
  encoded_.clear();
  encoded_.shrink_to_fit();
  sealed_ = false;
}

size_t TableData::resident_bytes() const {
  size_t bytes = 0;
  if (sealed_) {
    for (const auto& e : encoded_) bytes += e.encoded_bytes();
  } else {
    for (const auto& col : columns_) bytes += col.capacity() * sizeof(int64_t);
    bytes += rids_.capacity() * sizeof(int64_t);
  }
  return bytes;
}

}  // namespace lpa::storage
