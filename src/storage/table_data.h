#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace lpa::storage {

/// \brief Columnar in-memory data of one table.
///
/// All values are int64 surrogates (see schema::Column::width_bytes for the
/// modeled byte widths). Every row additionally carries a hidden, unique,
/// stable row id (`rid`) used for deterministic pseudo-filters and sampling.
class TableData {
 public:
  TableData() = default;
  explicit TableData(int num_columns)
      : columns_(static_cast<size_t>(num_columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  size_t num_rows() const { return rids_.size(); }

  std::vector<int64_t>& column(int c) { return columns_.at(static_cast<size_t>(c)); }
  const std::vector<int64_t>& column(int c) const {
    return columns_.at(static_cast<size_t>(c));
  }
  std::vector<int64_t>& rids() { return rids_; }
  const std::vector<int64_t>& rids() const { return rids_; }

  void Reserve(size_t n) {
    for (auto& col : columns_) col.reserve(n);
    rids_.reserve(n);
  }

  /// \brief Append one row; `values` must have one entry per column.
  void AppendRow(const std::vector<int64_t>& values, int64_t rid) {
    LPA_CHECK(values.size() == columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) columns_[c].push_back(values[c]);
    rids_.push_back(rid);
  }

  /// \brief Copy row `row` of `src` into this table (same column count).
  void AppendRowFrom(const TableData& src, size_t row) {
    LPA_CHECK(src.columns_.size() == columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(src.columns_[c][row]);
    }
    rids_.push_back(src.rids_[row]);
  }

 private:
  std::vector<std::vector<int64_t>> columns_;
  std::vector<int64_t> rids_;
};

}  // namespace lpa::storage
