#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "storage/encoded_column.h"
#include "util/logging.h"

namespace lpa::storage {

/// \brief Read-only view of one column that works on both representations of
/// a TableData: a plain `std::vector<int64_t>` (unsealed) or an
/// `EncodedColumn` (sealed). Kernels written against ColumnView are
/// bit-identical across representations because encoding is lossless.
class ColumnView {
 public:
  explicit ColumnView(const std::vector<int64_t>* plain) : plain_(plain) {}
  explicit ColumnView(const EncodedColumn* enc) : enc_(enc) {}

  size_t size() const { return plain_ ? plain_->size() : enc_->size(); }

  int64_t At(size_t i) const { return plain_ ? (*plain_)[i] : enc_->At(i); }

  /// The encoded representation, or nullptr when viewing a plain vector.
  /// Encoding-aware kernels (dictionary-code routing) branch on this.
  const EncodedColumn* encoded() const { return enc_; }

  /// \brief Assign the full column into `out` (the unfiltered-scan path).
  void CopyTo(std::vector<int64_t>* out) const {
    if (plain_) {
      *out = *plain_;
    } else {
      out->resize(enc_->size());
      enc_->DecodeRange(0, enc_->size(), out->data());
    }
  }

  /// \brief out[k] = value(idx[k]) for ascending `idx`; `scratch` is the
  /// reusable block-decode buffer (see EncodedColumn::Gather).
  void Gather(const uint32_t* idx, size_t count, int64_t* out,
              std::vector<int64_t>* scratch) const {
    if (plain_) {
      for (size_t k = 0; k < count; ++k) out[k] = (*plain_)[idx[k]];
    } else {
      enc_->Gather(idx, count, out, scratch);
    }
  }

  /// \brief Call `fn(start, count, data)` over the column in blocks of at
  /// most EncodedColumn::kBlock values. Plain columns pass pointers into the
  /// vector (no copy); encoded columns decode block-at-a-time into `scratch`.
  template <typename Fn>
  void ForEachBlock(std::vector<int64_t>* scratch, Fn&& fn) const {
    const size_t n = size();
    if (plain_) {
      const int64_t* base = plain_->data();
      for (size_t start = 0; start < n; start += EncodedColumn::kBlock) {
        size_t count = std::min(n - start, EncodedColumn::kBlock);
        fn(start, count, base + start);
      }
    } else {
      scratch->resize(EncodedColumn::kBlock);
      for (size_t start = 0; start < n; start += EncodedColumn::kBlock) {
        size_t count = std::min(n - start, EncodedColumn::kBlock);
        enc_->DecodeRange(start, count, scratch->data());
        fn(start, count, scratch->data());
      }
    }
  }

 private:
  const std::vector<int64_t>* plain_ = nullptr;
  const EncodedColumn* enc_ = nullptr;
};

/// \brief Columnar in-memory data of one table.
///
/// All values are int64 surrogates (see schema::Column::width_bytes for the
/// modeled byte widths). Every row additionally carries a hidden, unique,
/// stable row id (`rid`) used for deterministic pseudo-filters and sampling.
///
/// A TableData has two states (see docs/INTERNALS.md §11):
///  - *unsealed* (the default): plain per-column vectors, appendable.
///  - *sealed*: every column (and the rid column) is compressed into an
///    EncodedColumn chosen by the stats-driven chooser and the plain vectors
///    are released. Reads go through `view()` / `rid_view()`, which work in
///    both states. Any append auto-thaws (decodes back to plain vectors and
///    drops the encoding) — the caller re-seals when loading is done.
class TableData {
 public:
  TableData() = default;
  explicit TableData(int num_columns)
      : columns_(static_cast<size_t>(num_columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  size_t num_rows() const {
    return sealed_ ? encoded_.back().size() : rids_.size();
  }

  bool sealed() const { return sealed_; }

  /// \brief Compress every column (and the rids) with the encoding chooser
  /// and release the plain vectors. Idempotent.
  void Seal();

  /// \brief Decode back to plain vectors and drop the encodings. Idempotent.
  void Thaw();

  /// Direct mutable/plain access requires the unsealed representation; use
  /// `view()` for reads that must work in either state.
  std::vector<int64_t>& column(int c) {
    LPA_CHECK(!sealed_);
    return columns_.at(static_cast<size_t>(c));
  }
  const std::vector<int64_t>& column(int c) const {
    LPA_CHECK(!sealed_);
    return columns_.at(static_cast<size_t>(c));
  }
  std::vector<int64_t>& rids() {
    LPA_CHECK(!sealed_);
    return rids_;
  }
  const std::vector<int64_t>& rids() const {
    LPA_CHECK(!sealed_);
    return rids_;
  }

  /// \brief Representation-independent read access (column `c` / the rids).
  ColumnView view(int c) const {
    return sealed_ ? ColumnView(&encoded_.at(static_cast<size_t>(c)))
                   : ColumnView(&columns_.at(static_cast<size_t>(c)));
  }
  ColumnView rid_view() const {
    return sealed_ ? ColumnView(&encoded_.back()) : ColumnView(&rids_);
  }

  /// \brief Heap bytes of the current representation (encoded when sealed).
  size_t resident_bytes() const;
  /// \brief Heap bytes the plain representation occupies / would occupy.
  size_t raw_bytes() const {
    return (columns_.size() + 1) * num_rows() * sizeof(int64_t);
  }

  void Reserve(size_t n) {
    if (sealed_) Thaw();
    for (auto& col : columns_) col.reserve(n);
    rids_.reserve(n);
  }

  /// \brief Append one row; `values` must have one entry per column.
  /// Auto-thaws a sealed table.
  void AppendRow(std::span<const int64_t> values, int64_t rid) {
    LPA_CHECK(values.size() == columns_.size());
    if (sealed_) Thaw();
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(values[c]);
    }
    rids_.push_back(rid);
  }
  void AppendRow(const std::vector<int64_t>& values, int64_t rid) {
    AppendRow(std::span<const int64_t>(values.data(), values.size()), rid);
  }

  /// \brief Copy row `row` of `src` into this table (same column count).
  /// `src` must be unsealed (the bulk paths thaw once, not per row).
  void AppendRowFrom(const TableData& src, size_t row) {
    LPA_CHECK(src.columns_.size() == columns_.size());
    LPA_CHECK(!src.sealed_);
    if (sealed_) Thaw();
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(src.columns_[c][row]);
    }
    rids_.push_back(src.rids_[row]);
  }

 private:
  std::vector<std::vector<int64_t>> columns_;
  std::vector<int64_t> rids_;

  /// Sealed representation: one EncodedColumn per column, then the rids.
  bool sealed_ = false;
  std::vector<EncodedColumn> encoded_;
};

}  // namespace lpa::storage
