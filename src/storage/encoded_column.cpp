#include "storage/encoded_column.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "util/logging.h"

namespace lpa::storage {

namespace {

/// Deltas are computed in uint64 space so that min == INT64_MIN and friends
/// round-trip without signed overflow (two's complement wraparound is exact).
uint64_t DeltaOf(int64_t value, int64_t base) {
  return static_cast<uint64_t>(value) - static_cast<uint64_t>(base);
}

int64_t Rebase(int64_t base, uint64_t delta) {
  return static_cast<int64_t>(static_cast<uint64_t>(base) + delta);
}

size_t WordsFor(uint64_t bits) { return static_cast<size_t>((bits + 63) / 64); }

}  // namespace

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kPlain: return "plain";
    case Encoding::kRle: return "rle";
    case Encoding::kDict: return "dict";
    case Encoding::kFor: return "for";
  }
  return "?";
}

uint64_t EncodedColumn::ReadBits(const uint64_t* words, uint64_t bit_pos,
                                 int width) {
  if (width == 0) return 0;
  size_t word = static_cast<size_t>(bit_pos >> 6);
  int off = static_cast<int>(bit_pos & 63);
  uint64_t v = words[word] >> off;
  if (off + width > 64) v |= words[word + 1] << (64 - off);
  if (width >= 64) return v;
  return v & ((uint64_t{1} << width) - 1);
}

void EncodedColumn::WriteBits(std::vector<uint64_t>* words, uint64_t bit_pos,
                              int width, uint64_t value) {
  if (width == 0) return;
  size_t word = static_cast<size_t>(bit_pos >> 6);
  int off = static_cast<int>(bit_pos & 63);
  (*words)[word] |= value << off;
  if (off + width > 64) (*words)[word + 1] |= value >> (64 - off);
}

ColumnStats EncodedColumn::Analyze(const std::vector<int64_t>& values) {
  ColumnStats stats;
  stats.values = values.size();
  if (values.empty()) return stats;
  stats.min = stats.max = values[0];
  stats.runs = 1;
  std::unordered_set<int64_t> distinct;
  distinct.reserve(1024);
  bool capped = false;
  distinct.insert(values[0]);
  for (size_t i = 1; i < values.size(); ++i) {
    int64_t v = values[i];
    if (v != values[i - 1]) ++stats.runs;
    if (v < values[i - 1]) stats.sorted = false;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    if (!capped) {
      distinct.insert(v);
      if (distinct.size() > kDictMaxCard) capped = true;
    }
  }
  stats.distinct = capped ? kDictMaxCard + 1 : distinct.size();
  return stats;
}

EncodedColumn EncodedColumn::EncodePlain(const std::vector<int64_t>& values) {
  EncodedColumn c;
  c.encoding_ = Encoding::kPlain;
  c.size_ = values.size();
  c.plain_ = values;
  c.plain_.shrink_to_fit();
  return c;
}

EncodedColumn EncodedColumn::EncodeRle(const std::vector<int64_t>& values) {
  EncodedColumn c;
  c.encoding_ = Encoding::kRle;
  c.size_ = values.size();
  for (size_t i = 0; i < values.size(); ++i) {
    if (c.rle_values_.empty() || values[i] != c.rle_values_.back()) {
      c.rle_values_.push_back(values[i]);
      c.rle_ends_.push_back(i + 1);
    } else {
      c.rle_ends_.back() = i + 1;
    }
  }
  c.rle_values_.shrink_to_fit();
  c.rle_ends_.shrink_to_fit();
  return c;
}

EncodedColumn EncodedColumn::EncodeDict(const std::vector<int64_t>& values) {
  EncodedColumn c;
  c.encoding_ = Encoding::kDict;
  c.size_ = values.size();
  c.dict_ = values;
  std::sort(c.dict_.begin(), c.dict_.end());
  c.dict_.erase(std::unique(c.dict_.begin(), c.dict_.end()), c.dict_.end());
  c.dict_.shrink_to_fit();
  LPA_CHECK(c.dict_.size() <= kDictMaxCard);
  c.code_width_ = c.dict_.empty()
                      ? 1
                      : std::max(1, static_cast<int>(std::bit_width(c.dict_.size() - 1)));
  c.bits_.assign(WordsFor(static_cast<uint64_t>(values.size()) *
                          static_cast<uint64_t>(c.code_width_)),
                 0);
  for (size_t i = 0; i < values.size(); ++i) {
    auto it = std::lower_bound(c.dict_.begin(), c.dict_.end(), values[i]);
    uint64_t code = static_cast<uint64_t>(it - c.dict_.begin());
    WriteBits(&c.bits_, static_cast<uint64_t>(i) * c.code_width_,
              c.code_width_, code);
  }
  return c;
}

EncodedColumn EncodedColumn::EncodeFor(const std::vector<int64_t>& values) {
  EncodedColumn c;
  c.encoding_ = Encoding::kFor;
  c.size_ = values.size();
  const size_t blocks = (values.size() + kBlock - 1) / kBlock;
  c.for_bases_.resize(blocks);
  c.for_offsets_.resize(blocks);
  c.for_widths_.resize(blocks);
  uint64_t bit = 0;
  for (size_t b = 0; b < blocks; ++b) {
    size_t lo = b * kBlock;
    size_t hi = std::min(values.size(), lo + kBlock);
    int64_t mn = values[lo], mx = values[lo];
    for (size_t i = lo + 1; i < hi; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    uint64_t range = DeltaOf(mx, mn);
    int width = range == 0 ? 0 : static_cast<int>(std::bit_width(range));
    c.for_bases_[b] = mn;
    c.for_offsets_[b] = bit;
    c.for_widths_[b] = static_cast<uint8_t>(width);
    bit += static_cast<uint64_t>(width) * (hi - lo);
  }
  c.bits_.assign(WordsFor(bit), 0);
  for (size_t b = 0; b < blocks; ++b) {
    size_t lo = b * kBlock;
    size_t hi = std::min(values.size(), lo + kBlock);
    int width = c.for_widths_[b];
    uint64_t pos = c.for_offsets_[b];
    for (size_t i = lo; i < hi; ++i) {
      WriteBits(&c.bits_, pos, width, DeltaOf(values[i], c.for_bases_[b]));
      pos += static_cast<uint64_t>(width);
    }
  }
  return c;
}

EncodedColumn EncodedColumn::EncodeAs(Encoding encoding,
                                      const std::vector<int64_t>& values) {
  switch (encoding) {
    case Encoding::kPlain: return EncodePlain(values);
    case Encoding::kRle: return EncodeRle(values);
    case Encoding::kDict: return EncodeDict(values);
    case Encoding::kFor: return EncodeFor(values);
  }
  return EncodePlain(values);
}

EncodedColumn EncodedColumn::Encode(const std::vector<int64_t>& values) {
  if (values.empty()) return EncodePlain(values);
  ColumnStats stats = Analyze(values);

  const size_t plain_bytes = values.size() * sizeof(int64_t);
  const size_t rle_bytes = stats.runs * (sizeof(int64_t) + sizeof(uint64_t));
  size_t dict_bytes = SIZE_MAX;
  if (stats.distinct <= kDictMaxCard) {
    int cw = std::max(1, static_cast<int>(std::bit_width(stats.distinct - 1)));
    dict_bytes = stats.distinct * sizeof(int64_t) +
                 WordsFor(static_cast<uint64_t>(values.size()) * cw) * 8;
  }
  // Exact FOR size from per-block ranges (one extra cheap pass).
  uint64_t for_bits = 0;
  const size_t blocks = (values.size() + kBlock - 1) / kBlock;
  for (size_t b = 0; b < blocks; ++b) {
    size_t lo = b * kBlock;
    size_t hi = std::min(values.size(), lo + kBlock);
    int64_t mn = values[lo], mx = values[lo];
    for (size_t i = lo + 1; i < hi; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    uint64_t range = DeltaOf(mx, mn);
    for_bits += static_cast<uint64_t>(range == 0 ? 0 : std::bit_width(range)) *
                (hi - lo);
  }
  const size_t for_bytes =
      blocks * (sizeof(int64_t) + sizeof(uint64_t) + 1) + WordsFor(for_bits) * 8;

  // Smallest representation wins; ties break toward the cheaper decoder
  // (RLE < dict < FOR < plain). Deterministic by construction.
  Encoding best = Encoding::kRle;
  size_t best_bytes = rle_bytes;
  if (dict_bytes < best_bytes) {
    best = Encoding::kDict;
    best_bytes = dict_bytes;
  }
  if (for_bytes < best_bytes) {
    best = Encoding::kFor;
    best_bytes = for_bytes;
  }
  if (plain_bytes < best_bytes) best = Encoding::kPlain;
  return EncodeAs(best, values);
}

size_t EncodedColumn::encoded_bytes() const {
  switch (encoding_) {
    case Encoding::kPlain:
      return plain_.size() * sizeof(int64_t);
    case Encoding::kRle:
      return rle_values_.size() * sizeof(int64_t) +
             rle_ends_.size() * sizeof(uint64_t);
    case Encoding::kDict:
      return dict_.size() * sizeof(int64_t) + bits_.size() * sizeof(uint64_t);
    case Encoding::kFor:
      return for_bases_.size() * sizeof(int64_t) +
             for_offsets_.size() * sizeof(uint64_t) + for_widths_.size() +
             bits_.size() * sizeof(uint64_t);
  }
  return 0;
}

int64_t EncodedColumn::At(size_t i) const {
  LPA_CHECK(i < size_);
  switch (encoding_) {
    case Encoding::kPlain:
      return plain_[i];
    case Encoding::kRle: {
      size_t run = static_cast<size_t>(
          std::upper_bound(rle_ends_.begin(), rle_ends_.end(), i) -
          rle_ends_.begin());
      return rle_values_[run];
    }
    case Encoding::kDict: {
      uint64_t code = ReadBits(bits_.data(),
                               static_cast<uint64_t>(i) * code_width_,
                               code_width_);
      return dict_[static_cast<size_t>(code)];
    }
    case Encoding::kFor: {
      size_t b = i / kBlock;
      int width = for_widths_[b];
      uint64_t pos = for_offsets_[b] +
                     static_cast<uint64_t>(i - b * kBlock) * width;
      return Rebase(for_bases_[b], ReadBits(bits_.data(), pos, width));
    }
  }
  return 0;
}

void EncodedColumn::DecodeRange(size_t start, size_t count,
                                int64_t* out) const {
  if (count == 0) return;
  LPA_CHECK(start + count <= size_);
  switch (encoding_) {
    case Encoding::kPlain:
      std::copy(plain_.begin() + static_cast<ptrdiff_t>(start),
                plain_.begin() + static_cast<ptrdiff_t>(start + count), out);
      return;
    case Encoding::kRle: {
      size_t run = static_cast<size_t>(
          std::upper_bound(rle_ends_.begin(), rle_ends_.end(), start) -
          rle_ends_.begin());
      size_t i = start;
      size_t k = 0;
      while (k < count) {
        size_t run_end = static_cast<size_t>(rle_ends_[run]);
        size_t take = std::min(run_end - i, count - k);
        std::fill(out + k, out + k + take, rle_values_[run]);
        k += take;
        i += take;
        ++run;
      }
      return;
    }
    case Encoding::kDict: {
      uint64_t pos = static_cast<uint64_t>(start) * code_width_;
      for (size_t k = 0; k < count; ++k, pos += code_width_) {
        out[k] = dict_[static_cast<size_t>(
            ReadBits(bits_.data(), pos, code_width_))];
      }
      return;
    }
    case Encoding::kFor: {
      size_t i = start;
      size_t k = 0;
      while (k < count) {
        size_t b = i / kBlock;
        size_t block_end = std::min(size_, (b + 1) * kBlock);
        size_t take = std::min(block_end - i, count - k);
        int width = for_widths_[b];
        int64_t base = for_bases_[b];
        uint64_t pos =
            for_offsets_[b] + static_cast<uint64_t>(i - b * kBlock) * width;
        for (size_t j = 0; j < take; ++j, pos += width) {
          out[k + j] = Rebase(base, ReadBits(bits_.data(), pos, width));
        }
        k += take;
        i += take;
      }
      return;
    }
  }
}

std::vector<int64_t> EncodedColumn::Decode() const {
  std::vector<int64_t> out(size_);
  DecodeRange(0, size_, out.data());
  return out;
}

void EncodedColumn::Gather(const uint32_t* idx, size_t count, int64_t* out,
                           std::vector<int64_t>* scratch) const {
  switch (encoding_) {
    case Encoding::kPlain:
      for (size_t k = 0; k < count; ++k) out[k] = plain_[idx[k]];
      return;
    case Encoding::kDict:
      // Codes are O(1) random access; no block decode needed.
      for (size_t k = 0; k < count; ++k) {
        out[k] = dict_[static_cast<size_t>(
            ReadBits(bits_.data(),
                     static_cast<uint64_t>(idx[k]) * code_width_,
                     code_width_))];
      }
      return;
    case Encoding::kRle: {
      // Ascending indices: a forward run cursor never rewinds.
      size_t run = 0;
      for (size_t k = 0; k < count; ++k) {
        while (rle_ends_[run] <= idx[k]) ++run;
        out[k] = rle_values_[run];
      }
      return;
    }
    case Encoding::kFor: {
      // Block-at-a-time: decode each touched block once into the reusable
      // scratch buffer (ascending indices touch each block once).
      size_t cur = SIZE_MAX;
      for (size_t k = 0; k < count; ++k) {
        size_t b = idx[k] / kBlock;
        if (b != cur) {
          size_t lo = b * kBlock;
          size_t len = std::min(size_, lo + kBlock) - lo;
          scratch->resize(kBlock);
          DecodeRange(lo, len, scratch->data());
          cur = b;
        }
        out[k] = (*scratch)[idx[k] - cur * kBlock];
      }
      return;
    }
  }
}

void EncodedColumn::DecodeCodes(size_t start, size_t count,
                                uint32_t* out) const {
  LPA_CHECK(encoding_ == Encoding::kDict);
  LPA_CHECK(start + count <= size_);
  uint64_t pos = static_cast<uint64_t>(start) * code_width_;
  for (size_t k = 0; k < count; ++k, pos += code_width_) {
    out[k] = static_cast<uint32_t>(ReadBits(bits_.data(), pos, code_width_));
  }
}

}  // namespace lpa::storage
