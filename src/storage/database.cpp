#include "storage/database.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>

#include "util/hash.h"
#include "util/logging.h"

namespace lpa::storage {

namespace {

/// One foreign-key generation rule: child columns copied from a sampled
/// parent row (composite keys copy several columns from the same row).
struct FkGroup {
  schema::TableId parent = -1;
  std::vector<std::pair<schema::ColumnId, schema::ColumnId>> mappings;
};

/// Derive the FK groups of `child`: one group per schema foreign key,
/// extended with every additional equality that appears together with that
/// foreign key in some workload join predicate.
std::vector<FkGroup> DeriveFkGroups(const schema::Schema& schema,
                                    const workload::Workload& workload,
                                    schema::TableId child) {
  std::vector<FkGroup> groups;
  for (const auto& fk : schema.foreign_keys()) {
    if (fk.from.table != child) continue;
    FkGroup group;
    group.parent = fk.to.table;
    group.mappings.emplace_back(fk.from.column, fk.to.column);
    for (const auto& q : workload.queries()) {
      for (const auto& join : q.joins) {
        if (!join.Connects(child, group.parent)) continue;
        // The predicate must contain this foreign key's equality.
        bool has_fk = false;
        for (const auto& eq : join.equalities) {
          if ((eq.left == fk.from && eq.right == fk.to) ||
              (eq.left == fk.to && eq.right == fk.from)) {
            has_fk = true;
          }
        }
        if (!has_fk) continue;
        for (const auto& eq : join.equalities) {
          schema::ColumnRef c = eq.left.table == child ? eq.left : eq.right;
          schema::ColumnRef p = eq.left.table == child ? eq.right : eq.left;
          auto mapping = std::make_pair(c.column, p.column);
          if (std::find(group.mappings.begin(), group.mappings.end(), mapping) ==
              group.mappings.end()) {
            group.mappings.push_back(mapping);
          }
        }
      }
    }
    groups.push_back(std::move(group));
  }
  // Smaller (less specific) groups first so overlapping columns end up
  // consistent with the most constrained parent (e.g. orderline's item id
  // comes from the sampled stock row, which itself references a real item).
  std::stable_sort(groups.begin(), groups.end(),
                   [](const FkGroup& a, const FkGroup& b) {
                     return a.mappings.size() < b.mappings.size();
                   });
  return groups;
}

/// Target materialized row count for a table.
size_t TargetRows(const schema::Table& table, const GenerationConfig& config) {
  if (table.row_count <= config.small_table_threshold) {
    return static_cast<size_t>(table.row_count);
  }
  double scaled = static_cast<double>(table.row_count) * config.fraction;
  return static_cast<size_t>(
      std::max(scaled, static_cast<double>(config.small_table_threshold)));
}

}  // namespace

Database::Database(const schema::Schema* schema,
                   const workload::Workload* workload)
    : schema_(schema), workload_(workload) {
  tables_.reserve(static_cast<size_t>(schema->num_tables()));
  for (schema::TableId t = 0; t < schema->num_tables(); ++t) {
    tables_.emplace_back(
        static_cast<int>(schema->table(t).columns.size()));
  }
}

std::vector<schema::TableId> Database::TopologicalOrder() const {
  const int n = schema_->num_tables();
  std::vector<int> out_degree(static_cast<size_t>(n), 0);  // #parents pending
  for (const auto& fk : schema_->foreign_keys()) {
    ++out_degree[static_cast<size_t>(fk.from.table)];
  }
  std::vector<schema::TableId> order;
  std::vector<bool> emitted(static_cast<size_t>(n), false);
  // Kahn's algorithm: repeatedly emit tables whose parents are all emitted.
  while (static_cast<int>(order.size()) < n) {
    bool progress = false;
    for (schema::TableId t = 0; t < n; ++t) {
      if (emitted[static_cast<size_t>(t)]) continue;
      bool ready = true;
      for (const auto& fk : schema_->foreign_keys()) {
        if (fk.from.table == t && !emitted[static_cast<size_t>(fk.to.table)]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(t);
        emitted[static_cast<size_t>(t)] = true;
        progress = true;
      }
    }
    LPA_CHECK(progress);  // schema FK graphs are acyclic
  }
  return order;
}

void Database::GenerateRows(schema::TableId t, size_t count, Rng* rng) {
  const auto& table = schema_->table(t);
  auto groups = DeriveFkGroups(*schema_, *workload_, t);
  TableData& data = tables_[static_cast<size_t>(t)];
  data.Reserve(data.num_rows() + count);

  // Per-column Zipf samplers (only built for skewed, small-domain columns).
  std::map<schema::ColumnId, ZipfSampler> zipf;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    const auto& col = table.columns[c];
    if (col.zipf_theta > 0.0 && col.distinct_count <= 1'000'000) {
      zipf.emplace(static_cast<schema::ColumnId>(c),
                   ZipfSampler(col.distinct_count, col.zipf_theta));
    }
  }

  std::vector<int64_t> values(table.columns.size());
  for (size_t i = 0; i < count; ++i) {
    for (size_t c = 0; c < table.columns.size(); ++c) {
      auto it = zipf.find(static_cast<schema::ColumnId>(c));
      if (it != zipf.end()) {
        values[c] = it->second.Sample(rng);
      } else {
        values[c] = rng->UniformInt(1, table.columns[c].distinct_count);
      }
    }
    for (const auto& group : groups) {
      const TableData& parent = tables_[static_cast<size_t>(group.parent)];
      if (parent.num_rows() == 0) continue;
      size_t pidx = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(parent.num_rows()) - 1));
      for (const auto& [cc, pc] : group.mappings) {
        // view() instead of column(): a parent may be sealed when the engine
        // bulk-appends into an already compressed cluster (Exp 3a).
        values[static_cast<size_t>(cc)] = parent.view(pc).At(pidx);
      }
    }
    data.AppendRow(std::span<const int64_t>(values), next_rid_++);
  }
}

Database Database::Generate(const schema::Schema& schema,
                            const workload::Workload& workload,
                            const GenerationConfig& config) {
  Database db(&schema, &workload);
  Rng rng(config.seed);
  for (schema::TableId t : db.TopologicalOrder()) {
    Rng table_rng(HashCombine(config.seed, HashString(schema.table(t).name)));
    db.GenerateRows(t, TargetRows(schema.table(t), config), &table_rng);
  }
  return db;
}

double Database::materialized_fraction(schema::TableId t) const {
  return static_cast<double>(tables_.at(static_cast<size_t>(t)).num_rows()) /
         static_cast<double>(schema_->table(t).row_count);
}

size_t Database::total_rows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t.num_rows();
  return total;
}

void Database::BulkAppend(double fraction, uint64_t seed) {
  for (schema::TableId t : TopologicalOrder()) {
    size_t extra = static_cast<size_t>(std::llround(
        static_cast<double>(tables_[static_cast<size_t>(t)].num_rows()) *
        fraction));
    if (extra == 0) continue;
    Rng rng(HashCombine(seed, HashString(schema_->table(t).name)));
    GenerateRows(t, extra, &rng);
  }
}

Database Database::Sample(double rate, int64_t min_rows, uint64_t seed) const {
  Database sample(schema_, workload_);
  sample.next_rid_ = next_rid_;
  for (schema::TableId t = 0; t < schema_->num_tables(); ++t) {
    const TableData& src = tables_[static_cast<size_t>(t)];
    TableData& dst = sample.tables_[static_cast<size_t>(t)];
    size_t rows = src.num_rows();
    if (rows == 0) continue;
    double target = std::max(static_cast<double>(rows) * rate,
                             std::min(static_cast<double>(rows),
                                      static_cast<double>(min_rows)));
    double keep_fraction = std::min(target / static_cast<double>(rows), 1.0);
    uint64_t threshold = static_cast<uint64_t>(
        keep_fraction * static_cast<double>(UINT64_MAX));
    for (size_t r = 0; r < rows; ++r) {
      uint64_t h = Hash64(static_cast<uint64_t>(src.rids()[r]) ^ seed);
      if (h <= threshold) dst.AppendRowFrom(src, r);
    }
  }
  return sample;
}

}  // namespace lpa::storage
