#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lpa::storage {

/// \brief Lightweight per-column encodings for the columnar store.
///
/// All column data are int64 surrogates, so four simple schemes cover the
/// testbeds (see docs/INTERNALS.md §11):
///  - kPlain: the raw vector (always-valid fallback).
///  - kRle:   run-length (value, cumulative end) pairs for long constant
///            runs (e.g. a column of one repeated status code).
///  - kDict:  sorted unique value dictionary + bitpacked codes for
///            low-cardinality columns (e.g. `district_id`).
///  - kFor:   frame-of-reference blocks — per 1024-value block the minimum
///            is stored and every value is bitpacked as a delta from it.
///            Sorted / near-sorted key columns and rids compress to a few
///            bits per value.
enum class Encoding : uint8_t { kPlain = 0, kRle = 1, kDict = 2, kFor = 3 };

const char* EncodingName(Encoding e);

/// \brief Simple statistics that drive the encoding chooser (and are cheap
/// enough to compute on every Seal).
struct ColumnStats {
  size_t values = 0;
  size_t runs = 0;      ///< number of maximal constant runs
  size_t distinct = 0;  ///< exact up to kDictMaxCard, else kDictMaxCard + 1
  bool sorted = true;   ///< non-decreasing
  int64_t min = 0;
  int64_t max = 0;
};

/// \brief One immutable encoded column. Encoding is lossless and
/// deterministic: Decode() always reproduces the input vector exactly, so
/// kernels reading through EncodedColumn are bit-identical to kernels
/// reading the plain vector.
class EncodedColumn {
 public:
  /// Frame-of-reference block size and the granularity of block-at-a-time
  /// decode (the engine's scratch buffers are sized to this).
  static constexpr size_t kBlock = 1024;
  /// Maximum dictionary cardinality the chooser will consider.
  static constexpr size_t kDictMaxCard = size_t{1} << 16;

  EncodedColumn() = default;  ///< empty plain column

  static ColumnStats Analyze(const std::vector<int64_t>& values);

  /// \brief Encode with the stats-driven chooser: the candidate encodings'
  /// exact encoded sizes are estimated from one stats pass and the smallest
  /// representation wins (kPlain is always a candidate, so every column has
  /// a valid encoding).
  static EncodedColumn Encode(const std::vector<int64_t>& values);

  /// \brief Force a specific encoding (round-trip tests, benchmarks).
  /// kDict requires at most kDictMaxCard distinct values.
  static EncodedColumn EncodeAs(Encoding encoding,
                                const std::vector<int64_t>& values);

  Encoding encoding() const { return encoding_; }
  size_t size() const { return size_; }
  /// Actual resident heap bytes of this representation.
  size_t encoded_bytes() const;
  /// Bytes the plain int64 vector would occupy.
  size_t raw_bytes() const { return size_ * sizeof(int64_t); }

  /// \brief Random access (O(1) for plain/dict/FOR, O(log runs) for RLE).
  int64_t At(size_t i) const;

  /// \brief Decode `count` values starting at `start` into `out`.
  void DecodeRange(size_t start, size_t count, int64_t* out) const;

  /// \brief Full decode (exactly the vector that was encoded).
  std::vector<int64_t> Decode() const;

  /// \brief out[k] = value(idx[k]) for ascending `idx`. FOR gathers decode
  /// block-at-a-time through `scratch` (reused across calls); dict gathers
  /// read codes directly; RLE gathers walk the run cursor.
  void Gather(const uint32_t* idx, size_t count, int64_t* out,
              std::vector<int64_t>* scratch) const;

  // --- Dictionary access (valid iff encoding() == kDict) ------------------

  /// Sorted unique values; a code is an index into this vector.
  const std::vector<int64_t>& dict() const { return dict_; }
  /// \brief Decode `count` codes starting at `start`. Encoding-aware kernels
  /// (shard routing, code-space predicates) work per distinct value instead
  /// of per row through this.
  void DecodeCodes(size_t start, size_t count, uint32_t* out) const;

 private:
  static uint64_t ReadBits(const uint64_t* words, uint64_t bit_pos, int width);
  static void WriteBits(std::vector<uint64_t>* words, uint64_t bit_pos,
                        int width, uint64_t value);

  static EncodedColumn EncodePlain(const std::vector<int64_t>& values);
  static EncodedColumn EncodeRle(const std::vector<int64_t>& values);
  static EncodedColumn EncodeDict(const std::vector<int64_t>& values);
  static EncodedColumn EncodeFor(const std::vector<int64_t>& values);

  Encoding encoding_ = Encoding::kPlain;
  size_t size_ = 0;

  std::vector<int64_t> plain_;       // kPlain
  std::vector<int64_t> rle_values_;  // kRle: value per run
  std::vector<uint64_t> rle_ends_;   // kRle: cumulative end row (exclusive)
  std::vector<int64_t> dict_;        // kDict: sorted unique values
  int code_width_ = 0;               // kDict: bits per code
  std::vector<int64_t> for_bases_;   // kFor: per-block minimum
  std::vector<uint64_t> for_offsets_;  // kFor: per-block bit offset
  std::vector<uint8_t> for_widths_;  // kFor: per-block bits per delta
  std::vector<uint64_t> bits_;       // packed payload (codes / deltas)
};

}  // namespace lpa::storage
