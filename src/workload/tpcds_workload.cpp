#include "workload/benchmarks.h"

#include "util/logging.h"

namespace lpa::workload {

namespace {

/// Per-channel naming of the TPC-DS fact tables and their FK columns.
struct Channel {
  const char* sales;
  const char* returns;
  const char* s_date;
  const char* s_item;
  const char* s_cust;
  const char* s_number;  // ticket / order number
  const char* s_dim;     // channel dimension table
  const char* s_dim_fk;
  const char* s_dim_pk;
  const char* s_promo;
  const char* r_date;
  const char* r_item;
  const char* r_cust;
  const char* r_number;
};

const Channel kStore = {"store_sales",  "store_returns", "ss_sold_date_sk",
                        "ss_item_sk",   "ss_customer_sk", "ss_ticket_number",
                        "store",        "ss_store_sk",    "s_store_sk",
                        "ss_promo_sk",  "sr_returned_date_sk", "sr_item_sk",
                        "sr_customer_sk", "sr_ticket_number"};
const Channel kCatalog = {"catalog_sales", "catalog_returns", "cs_sold_date_sk",
                          "cs_item_sk",    "cs_bill_customer_sk", "cs_order_number",
                          "call_center",   "cs_call_center_sk", "cc_call_center_sk",
                          "cs_promo_sk",   "cr_returned_date_sk", "cr_item_sk",
                          "cr_refunded_customer_sk", "cr_order_number"};
const Channel kWeb = {"web_sales",   "web_returns", "ws_sold_date_sk",
                      "ws_item_sk",  "ws_bill_customer_sk", "ws_order_number",
                      "web_site",    "ws_web_site_sk", "web_site_sk",
                      "ws_promo_sk", "wr_returned_date_sk", "wr_item_sk",
                      "wr_refunded_customer_sk", "wr_order_number"};
const Channel kChannels[] = {kStore, kCatalog, kWeb};

}  // namespace

// A 60-query TPC-DS workload modeling the Postgres-XL-executable subset the
// paper evaluates: per-channel star queries, sales-returns joins on the
// composite (ticket/order number, item) key, cross-channel joins through
// item, inventory queries, and customer-centric snowflake queries. Several
// templates appear in multiple selectivity buckets (Sec 3.2).
Workload MakeTpcdsWorkload(const schema::Schema& s) {
  std::vector<QuerySpec> queries;
  int seq = 0;
  auto q = [&s, &seq]() {
    return QueryBuilder(&s, "q" + std::to_string(++seq));
  };

  // --- Family 1: date x item brand/category reports (q3/q42/q52/q55/q12/q20
  // style), three channels x three selectivity buckets. (18 queries)
  const double kItemSel[] = {0.1, 0.01, 0.001};
  for (const auto& ch : kChannels) {
    for (int b = 0; b < 3; ++b) {
      queries.push_back(q()
                            .Scan(ch.sales, 1.0)
                            .Scan("date_dim", 0.011)
                            .Scan("item", kItemSel[b])
                            .Join(ch.sales, ch.s_date, "date_dim", "d_date_sk")
                            .Join(ch.sales, ch.s_item, "item", "i_item_sk")
                            .Output(0.001)
                            .Bucket(b)
                            .Build());
    }
  }

  // --- Family 2: date x item x channel-dimension (q43/q62-style). (3)
  for (const auto& ch : kChannels) {
    queries.push_back(q()
                          .Scan(ch.sales, 1.0)
                          .Scan("date_dim", 0.08)
                          .Scan("item", 1.0)
                          .Scan(ch.s_dim, 1.0)
                          .Join(ch.sales, ch.s_date, "date_dim", "d_date_sk")
                          .Join(ch.sales, ch.s_item, "item", "i_item_sk")
                          .Join(ch.sales, ch.s_dim_fk, ch.s_dim, ch.s_dim_pk)
                          .Output(0.001)
                          .Build());
  }

  // --- Family 3: demographics + promotion (q7/q26-style). (3)
  const char* kCdemoFk[] = {"ss_cdemo_sk", nullptr, nullptr};
  for (size_t c = 0; c < 3; ++c) {
    const auto& ch = kChannels[c];
    auto b = q()
                 .Scan(ch.sales, 1.0)
                 .Scan("date_dim", 0.014)
                 .Scan("item", 1.0)
                 .Scan("promotion", 0.5)
                 .Join(ch.sales, ch.s_date, "date_dim", "d_date_sk")
                 .Join(ch.sales, ch.s_item, "item", "i_item_sk")
                 .Join(ch.sales, ch.s_promo, "promotion", "p_promo_sk");
    if (kCdemoFk[c] != nullptr) {
      b.Scan("customer_demographics", 0.05)
          .Join(ch.sales, kCdemoFk[c], "customer_demographics", "cd_demo_sk");
    }
    queries.push_back(b.Output(0.001).Build());
  }

  // --- Family 4: customer + address snowflake (q15/q45/q46-style), two
  // selectivity buckets per channel. (6)
  for (const auto& ch : kChannels) {
    for (int b = 0; b < 2; ++b) {
      queries.push_back(
          q().Scan(ch.sales, 1.0)
              .Scan("date_dim", b == 0 ? 0.02 : 0.16)
              .Scan("customer", 1.0)
              .Scan("customer_address", b == 0 ? 0.02 : 0.1)
              .Join(ch.sales, ch.s_date, "date_dim", "d_date_sk")
              .Join(ch.sales, ch.s_cust, "customer", "c_customer_sk")
              .Join("customer", "c_current_addr_sk", "customer_address", "ca_address_sk")
              .Output(0.001)
              .Bucket(b)
              .Build());
    }
  }

  // --- Family 5: sales ⋈ returns on the composite (number, item) key
  // (q17/q25/q29/q40-style). Partitioning both facts by item co-locates the
  // join — the non-obvious design the paper's agent discovers. (6)
  for (const auto& ch : kChannels) {
    for (int b = 0; b < 2; ++b) {
      auto builder = q()
                         .Scan(ch.sales, 1.0)
                         .Scan(ch.returns, 1.0)
                         .Scan("date_dim", b == 0 ? 0.011 : 0.08)
                         .Scan("item", 1.0)
                         .Join(ch.sales, ch.s_number, ch.returns, ch.r_number);
      builder.AndJoin(ch.sales, ch.s_item, ch.returns, ch.r_item);
      builder.Join(ch.sales, ch.s_date, "date_dim", "d_date_sk")
          .Join(ch.returns, ch.r_item, "item", "i_item_sk")
          .Output(0.001)
          .Bucket(b);
      queries.push_back(builder.Build());
    }
  }

  // --- Family 6: returns-only stars with reason (q85/q91/q93-style). (3)
  const char* kReasonFk[] = {"sr_reason_sk", "cr_reason_sk", "wr_reason_sk"};
  for (size_t c = 0; c < 3; ++c) {
    const auto& ch = kChannels[c];
    queries.push_back(q()
                          .Scan(ch.returns, 1.0)
                          .Scan("reason", 0.02)
                          .Scan("customer", 1.0)
                          .Join(ch.returns, kReasonFk[c], "reason", "r_reason_sk")
                          .Join(ch.returns, ch.r_cust, "customer", "c_customer_sk")
                          .Output(0.01)
                          .Build());
  }

  // --- Family 7: inventory (q21/q22/q37-style). (3)
  queries.push_back(q()
                        .Scan("inventory", 1.0)
                        .Scan("item", 0.01)
                        .Scan("warehouse", 1.0)
                        .Scan("date_dim", 0.04)
                        .Join("inventory", "inv_item_sk", "item", "i_item_sk")
                        .Join("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk")
                        .Join("inventory", "inv_date_sk", "date_dim", "d_date_sk")
                        .Output(0.001)
                        .Build());
  queries.push_back(q()
                        .Scan("inventory", 1.0)
                        .Scan("item", 1.0)
                        .Scan("date_dim", 0.08)
                        .Join("inventory", "inv_item_sk", "item", "i_item_sk")
                        .Join("inventory", "inv_date_sk", "date_dim", "d_date_sk")
                        .Output(0.001)
                        .Build());
  queries.push_back(q()
                        .Scan("inventory", 1.0)
                        .Scan("item", 0.005)
                        .Scan("warehouse", 1.0)
                        .Scan("date_dim", 0.16)
                        .Join("inventory", "inv_item_sk", "item", "i_item_sk")
                        .Join("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk")
                        .Join("inventory", "inv_date_sk", "date_dim", "d_date_sk")
                        .Output(0.001)
                        .Bucket(1)
                        .Build());

  // --- Family 8: catalog_sales ⋈ inventory on (item, warehouse) (q72). (1)
  queries.push_back(q()
                        .Scan("catalog_sales", 1.0)
                        .Scan("inventory", 1.0)
                        .Scan("item", 0.05)
                        .Scan("warehouse", 1.0)
                        .Scan("date_dim", 0.011)
                        .Join("catalog_sales", "cs_item_sk", "inventory", "inv_item_sk")
                        .AndJoin("catalog_sales", "cs_warehouse_sk", "inventory", "inv_warehouse_sk")
                        .AndJoin("catalog_sales", "cs_sold_date_sk", "inventory", "inv_date_sk")
                        .Join("catalog_sales", "cs_item_sk", "item", "i_item_sk")
                        .Join("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk")
                        .Join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk")
                        .Output(0.0001)
                        .Build());

  // --- Family 9: cross-channel repurchase chains (q29/q78-style): a store
  // sale is returned, then the same customer re-buys the item via another
  // channel. The composite (customer, item) keys keep cardinalities sane
  // while still rewarding item-aligned fact co-partitioning. (2)
  {
    auto builder = q()
                       .Scan("store_sales", 1.0)
                       .Scan("store_returns", 1.0)
                       .Scan("catalog_sales", 1.0)
                       .Scan("item", 0.05)
                       .Join("store_sales", "ss_ticket_number", "store_returns", "sr_ticket_number");
    builder.AndJoin("store_sales", "ss_item_sk", "store_returns", "sr_item_sk");
    builder.Join("store_returns", "sr_customer_sk", "catalog_sales", "cs_bill_customer_sk")
        .AndJoin("store_returns", "sr_item_sk", "catalog_sales", "cs_item_sk")
        .Join("store_sales", "ss_item_sk", "item", "i_item_sk")
        .Output(0.0001)
        .Build();
    queries.push_back(builder.Build());
  }
  {
    auto builder = q()
                       .Scan("web_sales", 1.0)
                       .Scan("web_returns", 1.0)
                       .Scan("catalog_sales", 1.0)
                       .Scan("item", 0.05)
                       .Join("web_sales", "ws_order_number", "web_returns", "wr_order_number");
    builder.AndJoin("web_sales", "ws_item_sk", "web_returns", "wr_item_sk");
    builder.Join("web_returns", "wr_refunded_customer_sk", "catalog_sales", "cs_bill_customer_sk")
        .AndJoin("web_returns", "wr_item_sk", "catalog_sales", "cs_item_sk")
        .Join("web_sales", "ws_item_sk", "item", "i_item_sk")
        .Output(0.0001);
    queries.push_back(builder.Build());
  }

  // --- Family 10: household demographics + time (q96-style, store only). (1)
  queries.push_back(q()
                        .Scan("store_sales", 1.0)
                        .Scan("household_demographics", 0.1)
                        .Scan("date_dim", 0.04)
                        .Scan("store", 1.0)
                        .Join("store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk")
                        .Join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
                        .Join("store_sales", "ss_store_sk", "store", "s_store_sk")
                        .Output(0.0001)
                        .Build());

  // --- Family 11: logistics dimensions (q62/q99-style). (2)
  queries.push_back(q()
                        .Scan("catalog_sales", 1.0)
                        .Scan("warehouse", 1.0)
                        .Scan("ship_mode", 1.0)
                        .Scan("call_center", 1.0)
                        .Scan("date_dim", 0.08)
                        .Join("catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk")
                        .Join("catalog_sales", "cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk")
                        .Join("catalog_sales", "cs_call_center_sk", "call_center", "cc_call_center_sk")
                        .Join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk")
                        .Output(0.001)
                        .Build());
  queries.push_back(q()
                        .Scan("web_sales", 1.0)
                        .Scan("web_page", 1.0)
                        .Scan("web_site", 1.0)
                        .Scan("date_dim", 0.08)
                        .Join("web_sales", "ws_web_page_sk", "web_page", "wp_web_page_sk")
                        .Join("web_sales", "ws_web_site_sk", "web_site", "web_site_sk")
                        .Join("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk")
                        .Output(0.001)
                        .Build());

  // --- Family 12: store revenue per item (q65-style) + broad demographic
  // filter (q13-style). (2)
  queries.push_back(q()
                        .Scan("store_sales", 1.0)
                        .Scan("store", 1.0)
                        .Scan("item", 1.0)
                        .Scan("date_dim", 0.08)
                        .Join("store_sales", "ss_store_sk", "store", "s_store_sk")
                        .Join("store_sales", "ss_item_sk", "item", "i_item_sk")
                        .Join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
                        .Output(0.01)
                        .Build());
  queries.push_back(q()
                        .Scan("store_sales", 1.0)
                        .Scan("store", 1.0)
                        .Scan("customer_demographics", 0.05)
                        .Scan("household_demographics", 0.1)
                        .Scan("customer_address", 0.06)
                        .Scan("date_dim", 0.14)
                        .Join("store_sales", "ss_store_sk", "store", "s_store_sk")
                        .Join("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk")
                        .Join("store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk")
                        .Join("store_sales", "ss_addr_sk", "customer_address", "ca_address_sk")
                        .Join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
                        .Output(0.0001)
                        .Build());

  // --- Family 13: returns + customer + address (q30/q81-style). (2)
  queries.push_back(q()
                        .Scan("web_returns", 1.0)
                        .Scan("date_dim", 0.14)
                        .Scan("customer", 1.0)
                        .Scan("customer_address", 0.02)
                        .Join("web_returns", "wr_returned_date_sk", "date_dim", "d_date_sk")
                        .Join("web_returns", "wr_refunded_customer_sk", "customer", "c_customer_sk")
                        .Join("customer", "c_current_addr_sk", "customer_address", "ca_address_sk")
                        .Output(0.001)
                        .Build());
  queries.push_back(q()
                        .Scan("catalog_returns", 1.0)
                        .Scan("date_dim", 0.14)
                        .Scan("customer", 1.0)
                        .Scan("customer_address", 0.02)
                        .Join("catalog_returns", "cr_returned_date_sk", "date_dim", "d_date_sk")
                        .Join("catalog_returns", "cr_refunded_customer_sk", "customer", "c_customer_sk")
                        .Join("customer", "c_current_addr_sk", "customer_address", "ca_address_sk")
                        .Output(0.001)
                        .Build());

  // --- Family 14: catalog return-rate analysis (q91-style): sales joined to
  // their returns plus the call center and reason dimensions. (2)
  for (int b = 0; b < 2; ++b) {
    auto builder = q()
                       .Scan("catalog_sales", 1.0)
                       .Scan("catalog_returns", 1.0)
                       .Scan("call_center", 1.0)
                       .Scan("reason", b == 0 ? 0.02 : 0.2)
                       .Join("catalog_sales", "cs_order_number", "catalog_returns", "cr_order_number");
    builder.AndJoin("catalog_sales", "cs_item_sk", "catalog_returns", "cr_item_sk");
    builder.Join("catalog_returns", "cr_call_center_sk", "call_center", "cc_call_center_sk")
        .Join("catalog_returns", "cr_reason_sk", "reason", "r_reason_sk")
        .Output(0.001)
        .Bucket(b);
    queries.push_back(builder.Build());
  }

  // --- Family 15: single-fact sharp date slices (q96/q50-style residual
  // reporting queries across channels, two buckets). (6)
  for (const auto& ch : kChannels) {
    for (int b = 0; b < 2; ++b) {
      queries.push_back(q()
                            .Scan(ch.sales, 1.0)
                            .Scan("date_dim", b == 0 ? 0.0027 : 0.011)
                            .Join(ch.sales, ch.s_date, "date_dim", "d_date_sk")
                            .Output(0.001)
                            .Bucket(b)
                            .Build());
    }
  }

  // --- Family 16: sales x date x item x customer (q19-style). (3)
  for (const auto& ch : kChannels) {
    queries.push_back(q()
                          .Scan(ch.sales, 1.0)
                          .Scan("date_dim", 0.011)
                          .Scan("item", 0.01)
                          .Scan("customer", 1.0)
                          .Join(ch.sales, ch.s_date, "date_dim", "d_date_sk")
                          .Join(ch.sales, ch.s_item, "item", "i_item_sk")
                          .Join(ch.sales, ch.s_cust, "customer", "c_customer_sk")
                          .Output(0.001)
                          .Build());
  }

  // --- Family 17: category rollups without a date restriction. (3)
  for (const auto& ch : kChannels) {
    queries.push_back(q()
                          .Scan(ch.sales, 1.0)
                          .Scan("item", 0.1)
                          .Join(ch.sales, ch.s_item, "item", "i_item_sk")
                          .Output(0.001)
                          .Build());
  }

  // --- Family 18: returns x date x item (return-rate reports). (3)
  for (const auto& ch : kChannels) {
    queries.push_back(q()
                          .Scan(ch.returns, 1.0)
                          .Scan("date_dim", 0.08)
                          .Scan("item", 0.1)
                          .Join(ch.returns, ch.r_date, "date_dim", "d_date_sk")
                          .Join(ch.returns, ch.r_item, "item", "i_item_sk")
                          .Output(0.001)
                          .Build());
  }

  LPA_CHECK(queries.size() == 60);
  Workload w(std::move(queries));
  w.SetUniformFrequencies();
  return w;
}

}  // namespace lpa::workload
