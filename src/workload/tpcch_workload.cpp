#include "workload/benchmarks.h"

namespace lpa::workload {

namespace {

/// order ⋈ orderline on the composite (order-id, warehouse, district) key.
/// Matching rows agree on all three, so partitioning both sides by any of
/// o_id / wd_id / d_id (and the orderline counterparts) co-locates the join.
QueryBuilder& JoinOrderOrderline(QueryBuilder& b) {
  return b.Join("order", "o_id", "orderline", "ol_o_id")
      .AndJoin("order", "o_wd_id", "orderline", "ol_wd_id")
      .AndJoin("order", "o_d_id", "orderline", "ol_d_id");
}

QueryBuilder& JoinCustomerOrder(QueryBuilder& b) {
  return b.Join("customer", "c_id", "order", "o_c_id")
      .AndJoin("customer", "c_wd_id", "order", "o_wd_id")
      .AndJoin("customer", "c_d_id", "order", "o_d_id");
}

QueryBuilder& JoinOrderNeworder(QueryBuilder& b) {
  return b.Join("order", "o_id", "neworder", "no_o_id")
      .AndJoin("order", "o_wd_id", "neworder", "no_wd_id")
      .AndJoin("order", "o_d_id", "neworder", "no_d_id");
}

/// orderline ⋈ stock on the composite (item, supply-warehouse) key.
QueryBuilder& JoinOrderlineStock(QueryBuilder& b) {
  return b.Join("orderline", "ol_iw_id", "stock", "s_iw_id")
      .AndJoin("orderline", "ol_i_id", "stock", "s_i_id");
}

}  // namespace

// The 22 analytical queries of the CH-benCHmark (TPC-H queries adapted to
// the TPC-C schema), modeled structurally: table sets, composite join keys,
// and the original queries' selectivity profiles.
Workload MakeTpcchWorkload(const schema::Schema& s) {
  std::vector<QuerySpec> queries;
  auto q = [&s](const char* name) { return QueryBuilder(&s, name); };

  {  // Q1: pricing summary over orderline.
    auto b = q("q01").Scan("orderline", 0.95).Output(0.00001);
    queries.push_back(b.Build());
  }
  {  // Q2: minimum-cost supplier: item x stock x supplier x nation x region.
    auto b = q("q02")
                 .Scan("item", 0.04)
                 .Scan("stock", 1.0)
                 .Scan("supplier", 1.0)
                 .Scan("nation", 1.0)
                 .Scan("region", 0.2)
                 .Join("stock", "s_i_id", "item", "i_id")
                 .Join("stock", "s_su_id", "supplier", "su_id")
                 .Join("supplier", "su_n_id", "nation", "n_id")
                 .Join("nation", "n_r_id", "region", "r_id")
                 .Output(0.001);
    queries.push_back(b.Build());
  }
  {  // Q3: unshipped orders: customer x order x orderline x neworder.
    auto b = q("q03")
                 .Scan("customer", 0.1)
                 .Scan("order", 0.6)
                 .Scan("orderline", 1.0)
                 .Scan("neworder", 1.0);
    JoinCustomerOrder(b);
    JoinOrderOrderline(b);
    JoinOrderNeworder(b);
    queries.push_back(b.Output(0.001).Build());
  }
  {  // Q4: order priority: order x orderline (EXISTS).
    auto b = q("q04").Scan("order", 0.3).Scan("orderline", 1.0);
    JoinOrderOrderline(b);
    queries.push_back(b.Output(0.0001).Build());
  }
  {  // Q5: local supplier volume: full customer-order-orderline-stock chain.
    auto b = q("q05")
                 .Scan("customer", 1.0)
                 .Scan("order", 0.4)
                 .Scan("orderline", 1.0)
                 .Scan("stock", 1.0)
                 .Scan("supplier", 1.0)
                 .Scan("nation", 1.0)
                 .Scan("region", 0.2);
    JoinCustomerOrder(b);
    JoinOrderOrderline(b);
    JoinOrderlineStock(b);
    b.Join("stock", "s_su_id", "supplier", "su_id")
        .Join("supplier", "su_n_id", "nation", "n_id")
        .Join("nation", "n_r_id", "region", "r_id");
    queries.push_back(b.Output(0.0001).Build());
  }
  {  // Q6: forecast revenue: orderline scan.
    queries.push_back(q("q06").Scan("orderline", 0.1).Output(0.00001).Build());
  }
  {  // Q7: volume shipping: supplier x stock x orderline x order x customer x nation.
    auto b = q("q07")
                 .Scan("supplier", 1.0)
                 .Scan("stock", 1.0)
                 .Scan("orderline", 0.5)
                 .Scan("order", 1.0)
                 .Scan("customer", 1.0)
                 .Scan("nation", 2.0 / 62);
    JoinOrderlineStock(b);
    JoinOrderOrderline(b);
    JoinCustomerOrder(b);
    b.Join("stock", "s_su_id", "supplier", "su_id")
        .Join("supplier", "su_n_id", "nation", "n_id");
    queries.push_back(b.Output(0.0001).Build());
  }
  {  // Q8: market share: item-restricted chain with two nations/region.
    auto b = q("q08")
                 .Scan("item", 0.001)
                 .Scan("orderline", 1.0)
                 .Scan("stock", 1.0)
                 .Scan("order", 0.5)
                 .Scan("customer", 1.0)
                 .Scan("nation", 1.0)
                 .Scan("region", 0.2)
                 .Scan("supplier", 1.0);
    b.Join("orderline", "ol_i_id", "item", "i_id");
    JoinOrderlineStock(b);
    JoinOrderOrderline(b);
    JoinCustomerOrder(b);
    b.Join("stock", "s_su_id", "supplier", "su_id")
        .Join("supplier", "su_n_id", "nation", "n_id")
        .Join("nation", "n_r_id", "region", "r_id");
    queries.push_back(b.Output(0.0001).Build());
  }
  {  // Q9: product type profit: item x stock x orderline x order x supplier x nation.
    auto b = q("q09")
                 .Scan("item", 0.05)
                 .Scan("stock", 1.0)
                 .Scan("orderline", 1.0)
                 .Scan("order", 1.0)
                 .Scan("supplier", 1.0)
                 .Scan("nation", 1.0);
    b.Join("orderline", "ol_i_id", "item", "i_id");
    JoinOrderlineStock(b);
    JoinOrderOrderline(b);
    b.Join("stock", "s_su_id", "supplier", "su_id")
        .Join("supplier", "su_n_id", "nation", "n_id");
    queries.push_back(b.Output(0.001).Build());
  }
  {  // Q10: returned items: customer x order x orderline x nation.
    auto b = q("q10")
                 .Scan("customer", 1.0)
                 .Scan("order", 0.08)
                 .Scan("orderline", 1.0)
                 .Scan("nation", 1.0);
    JoinCustomerOrder(b);
    JoinOrderOrderline(b);
    b.Join("customer", "c_n_id", "nation", "n_id");
    queries.push_back(b.Output(0.001).Build());
  }
  {  // Q11: important stock: stock x supplier x nation.
    auto b = q("q11")
                 .Scan("stock", 1.0)
                 .Scan("supplier", 1.0)
                 .Scan("nation", 1.0 / 62)
                 .Join("stock", "s_su_id", "supplier", "su_id")
                 .Join("supplier", "su_n_id", "nation", "n_id");
    queries.push_back(b.Output(0.01).Build());
  }
  {  // Q12: shipping modes: order x orderline.
    auto b = q("q12").Scan("order", 1.0).Scan("orderline", 0.3);
    JoinOrderOrderline(b);
    queries.push_back(b.Output(0.0001).Build());
  }
  {  // Q13: customer distribution: customer x order.
    auto b = q("q13").Scan("customer", 1.0).Scan("order", 0.8);
    JoinCustomerOrder(b);
    queries.push_back(b.Output(0.001).Build());
  }
  {  // Q14: promotion effect: orderline x item.
    auto b = q("q14")
                 .Scan("orderline", 0.01)
                 .Scan("item", 1.0)
                 .Join("orderline", "ol_i_id", "item", "i_id");
    queries.push_back(b.Output(0.00001).Build());
  }
  {  // Q15: top supplier: orderline x stock x supplier.
    auto b = q("q15").Scan("orderline", 0.25).Scan("stock", 1.0).Scan("supplier", 1.0);
    JoinOrderlineStock(b);
    b.Join("stock", "s_su_id", "supplier", "su_id");
    queries.push_back(b.Output(0.001).Build());
  }
  {  // Q16: parts/supplier relationship: item x stock.
    auto b = q("q16")
                 .Scan("item", 0.1)
                 .Scan("stock", 1.0)
                 .Join("stock", "s_i_id", "item", "i_id");
    queries.push_back(b.Output(0.01).Build());
  }
  {  // Q17: small-quantity revenue: orderline x item (sharp item filter).
    auto b = q("q17")
                 .Scan("orderline", 1.0)
                 .Scan("item", 0.001)
                 .Join("orderline", "ol_i_id", "item", "i_id");
    queries.push_back(b.Output(0.00001).Build());
  }
  {  // Q18: large volume customers: customer x order x orderline.
    auto b = q("q18").Scan("customer", 1.0).Scan("order", 1.0).Scan("orderline", 1.0);
    JoinCustomerOrder(b);
    JoinOrderOrderline(b);
    queries.push_back(b.Output(0.0001).Build());
  }
  {  // Q19: discounted revenue: orderline x item.
    auto b = q("q19")
                 .Scan("orderline", 0.2)
                 .Scan("item", 0.01)
                 .Join("orderline", "ol_i_id", "item", "i_id");
    queries.push_back(b.Output(0.00001).Build());
  }
  {  // Q20: potential promotion: supplier x nation + stock x item restriction.
    auto b = q("q20")
                 .Scan("supplier", 1.0)
                 .Scan("nation", 1.0 / 62)
                 .Scan("stock", 1.0)
                 .Scan("item", 0.01)
                 .Join("stock", "s_i_id", "item", "i_id")
                 .Join("stock", "s_su_id", "supplier", "su_id")
                 .Join("supplier", "su_n_id", "nation", "n_id");
    queries.push_back(b.Output(0.001).Build());
  }
  {  // Q21: late deliveries: supplier x stock x orderline x order x nation.
    auto b = q("q21")
                 .Scan("supplier", 1.0)
                 .Scan("stock", 1.0)
                 .Scan("orderline", 0.7)
                 .Scan("order", 1.0)
                 .Scan("nation", 1.0 / 62);
    JoinOrderlineStock(b);
    JoinOrderOrderline(b);
    b.Join("stock", "s_su_id", "supplier", "su_id")
        .Join("supplier", "su_n_id", "nation", "n_id");
    queries.push_back(b.Output(0.0001).Build());
  }
  {  // Q22: global sales opportunity: customer x order (anti join).
    auto b = q("q22").Scan("customer", 0.3).Scan("order", 1.0);
    JoinCustomerOrder(b);
    queries.push_back(b.Output(0.0001).Build());
  }

  Workload w(std::move(queries));
  w.SetUniformFrequencies();
  return w;
}

}  // namespace lpa::workload
