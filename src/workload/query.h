#pragma once

#include <string>
#include <vector>

#include "schema/schema.h"
#include "util/status.h"

namespace lpa::workload {

/// \brief One column equality `left = right` of a join predicate.
struct JoinEquality {
  schema::ColumnRef left;
  schema::ColumnRef right;

  bool operator==(const JoinEquality&) const = default;
};

/// \brief A (possibly compound) equi-join predicate: the conjunction of its
/// equalities. Compound predicates model composite keys — e.g. the TPC-CH
/// order-orderline join matches on order-id *and* the (warehouse, district)
/// compound, so partitioning both tables by district co-locates the join.
struct JoinPredicate {
  std::vector<JoinEquality> equalities;

  /// \brief The two table ids joined by this predicate (from the first
  /// equality; all equalities must join the same table pair).
  schema::TableId left_table() const { return equalities.front().left.table; }
  schema::TableId right_table() const { return equalities.front().right.table; }

  /// \brief True if the predicate connects tables `a` and `b` (unordered).
  bool Connects(schema::TableId a, schema::TableId b) const {
    return (left_table() == a && right_table() == b) ||
           (left_table() == b && right_table() == a);
  }
};

/// \brief A base-table access with the combined selectivity of its local
/// (non-join) predicates.
struct TableScan {
  schema::TableId table = -1;
  double selectivity = 1.0;
};

/// \brief Structural representation of one OLAP query.
///
/// The advisor does not need full SQL semantics: what determines the effect
/// of a partitioning are the accessed tables, their local selectivities, the
/// equi-join graph, and how much of the join result survives aggregation.
/// `lpa::sql::ParseQuery` produces QuerySpecs from SQL text; the benchmark
/// workloads construct them directly.
struct QuerySpec {
  std::string name;
  std::vector<TableScan> scans;
  std::vector<JoinPredicate> joins;
  /// Fraction of the final join result that is materialized / aggregated
  /// into the query answer (1.0 = full result shipped to the coordinator).
  double output_fraction = 0.01;
  /// Selectivity bucket for parameterized queries (Sec 3.2): instances of
  /// the same template whose parameters fall in different selectivity ranges
  /// occupy different workload-state entries.
  int selectivity_bucket = 0;

  /// \brief Number of referenced tables.
  int num_tables() const { return static_cast<int>(scans.size()); }

  /// \brief All referenced table ids, in scan order.
  std::vector<schema::TableId> tables() const;

  /// \brief True if the query references the given table.
  bool References(schema::TableId table) const;

  /// \brief Local selectivity of `table` (1.0 if not referenced).
  double SelectivityOf(schema::TableId table) const;

  /// \brief Validate against a schema: scans reference distinct existing
  /// tables, join equalities reference scanned tables and existing columns,
  /// and the join graph is connected.
  Status Validate(const schema::Schema& schema) const;
};

/// \brief Builder used by the workload generators and the SQL binder.
class QueryBuilder {
 public:
  QueryBuilder(const schema::Schema* schema, std::string name)
      : schema_(schema) {
    spec_.name = std::move(name);
  }

  /// \brief Add a table scan with the given local selectivity.
  QueryBuilder& Scan(const std::string& table, double selectivity = 1.0);

  /// \brief Add a single-equality join `t1.c1 = t2.c2`.
  QueryBuilder& Join(const std::string& t1, const std::string& c1,
                     const std::string& t2, const std::string& c2);

  /// \brief Add an additional equality to the most recent join predicate,
  /// forming a compound predicate.
  QueryBuilder& AndJoin(const std::string& t1, const std::string& c1,
                        const std::string& t2, const std::string& c2);

  /// \brief Set the output fraction surviving aggregation.
  QueryBuilder& Output(double fraction);

  /// \brief Set the selectivity bucket id.
  QueryBuilder& Bucket(int bucket);

  /// \brief Finalize; aborts on an invalid spec (generator coding error).
  QuerySpec Build() const;

 private:
  schema::ColumnRef MustResolve(const std::string& table,
                                const std::string& column) const;

  const schema::Schema* schema_;
  QuerySpec spec_;
};

}  // namespace lpa::workload
