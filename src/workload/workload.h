#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"
#include "workload/query.h"

namespace lpa::workload {

/// \brief A representative query set plus the current query-mix frequencies.
///
/// This is the workload state of Sec 3.2: the advisor is trained once over a
/// fixed set of representative queries and fed different normalized frequency
/// vectors `s(Q) = (f_1 .. f_m)` at training and inference time. Entries may
/// be zero ("slots" for queries that have not occurred yet, including reserve
/// slots used by incremental training).
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<QuerySpec> queries)
      : queries_(std::move(queries)),
        frequencies_(queries_.size(), 1.0) {}

  /// \brief Append a query with frequency 0 (a fresh slot); returns its index.
  int AddQuery(QuerySpec query);

  int num_queries() const { return static_cast<int>(queries_.size()); }
  const std::vector<QuerySpec>& queries() const { return queries_; }
  const QuerySpec& query(int i) const { return queries_.at(static_cast<size_t>(i)); }

  /// \brief Current frequency vector (normalized so the max entry is 1).
  const std::vector<double>& frequencies() const { return frequencies_; }

  /// \brief Replace the frequency vector; it is re-normalized to max = 1.
  Status SetFrequencies(std::vector<double> freqs);

  /// \brief Set every frequency to 1.
  void SetUniformFrequencies();

  /// \brief All tables referenced by at least one query.
  std::vector<schema::TableId> ReferencedTables() const;

  /// \brief Queries (indices) referencing any table in `tables`. Used by the
  /// query-runtime cache and lazy repartitioning (Sec 4.2).
  std::vector<int> QueriesTouching(const std::vector<schema::TableId>& tables) const;

  /// \brief Validate every query against the schema.
  Status Validate(const schema::Schema& schema) const;

 private:
  std::vector<QuerySpec> queries_;
  std::vector<double> frequencies_;
};

/// \brief Normalize a frequency vector so its maximum entry equals 1.
std::vector<double> NormalizeFrequencies(std::vector<double> freqs);

/// \brief Frequency vector with query `hot` over-represented: `f_hot = high`
/// and all others `low`. Used to derive reference partitionings (Sec 5).
std::vector<double> OverRepresentedFrequencies(int num_queries, int hot,
                                               double low = 0.1,
                                               double high = 1.0);

/// \brief Uniform random frequency vector (each entry ~ U[0,1], renormalized).
std::vector<double> SampleUniformFrequencies(int num_queries, Rng* rng);

/// \brief Random frequency vector where queries whose index is in `boosted`
/// get weights ~ U[0.5, 1] and the rest ~ U[0, 0.3] — models the "cluster B"
/// style mixes of Exp 3b where certain joins dominate.
std::vector<double> SampleBoostedFrequencies(int num_queries,
                                             const std::vector<int>& boosted,
                                             Rng* rng);

}  // namespace lpa::workload
