#include "workload/benchmarks.h"

#include <algorithm>
#include <cmath>

namespace lpa::workload {

// The 13 queries of the Star Schema Benchmark. Selectivities follow the
// filter factors of the SSB paper (O'Neil et al.): flight 1 restricts date
// and lineorder measures, flights 2-4 drill down through part / supplier /
// customer hierarchies with successively sharper predicates.
Workload MakeSsbWorkload(const schema::Schema& s) {
  std::vector<QuerySpec> queries;
  auto q = [&s](const char* name) { return QueryBuilder(&s, name); };

  // Flight 1: lineorder x date, aggregate revenue.
  queries.push_back(q("q1.1")
                        .Scan("lineorder", 0.14)
                        .Scan("date", 1.0 / 7)
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.0001)
                        .Bucket(0)
                        .Build());
  queries.push_back(q("q1.2")
                        .Scan("lineorder", 0.04)
                        .Scan("date", 1.0 / 84)
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.0001)
                        .Bucket(1)
                        .Build());
  queries.push_back(q("q1.3")
                        .Scan("lineorder", 0.02)
                        .Scan("date", 1.0 / 364)
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.0001)
                        .Bucket(2)
                        .Build());

  // Flight 2: lineorder x date x part x supplier, group by year/brand.
  queries.push_back(q("q2.1")
                        .Scan("lineorder", 1.0)
                        .Scan("date", 1.0)
                        .Scan("part", 1.0 / 25)
                        .Scan("supplier", 0.2)
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Join("lineorder", "lo_partkey", "part", "p_partkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Output(0.001)
                        .Build());
  queries.push_back(q("q2.2")
                        .Scan("lineorder", 1.0)
                        .Scan("date", 1.0)
                        .Scan("part", 1.0 / 125)
                        .Scan("supplier", 0.2)
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Join("lineorder", "lo_partkey", "part", "p_partkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Output(0.001)
                        .Bucket(1)
                        .Build());
  queries.push_back(q("q2.3")
                        .Scan("lineorder", 1.0)
                        .Scan("date", 1.0)
                        .Scan("part", 1.0 / 1000)
                        .Scan("supplier", 0.2)
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Join("lineorder", "lo_partkey", "part", "p_partkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Output(0.001)
                        .Bucket(2)
                        .Build());

  // Flight 3: lineorder x customer x supplier x date, group by city/year.
  queries.push_back(q("q3.1")
                        .Scan("lineorder", 1.0)
                        .Scan("customer", 0.2)
                        .Scan("supplier", 0.2)
                        .Scan("date", 6.0 / 7)
                        .Join("lineorder", "lo_custkey", "customer", "c_custkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.001)
                        .Build());
  queries.push_back(q("q3.2")
                        .Scan("lineorder", 1.0)
                        .Scan("customer", 1.0 / 25)
                        .Scan("supplier", 1.0 / 25)
                        .Scan("date", 6.0 / 7)
                        .Join("lineorder", "lo_custkey", "customer", "c_custkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.001)
                        .Bucket(1)
                        .Build());
  queries.push_back(q("q3.3")
                        .Scan("lineorder", 1.0)
                        .Scan("customer", 2.0 / 250)
                        .Scan("supplier", 2.0 / 250)
                        .Scan("date", 6.0 / 7)
                        .Join("lineorder", "lo_custkey", "customer", "c_custkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.001)
                        .Bucket(2)
                        .Build());
  queries.push_back(q("q3.4")
                        .Scan("lineorder", 1.0)
                        .Scan("customer", 2.0 / 250)
                        .Scan("supplier", 2.0 / 250)
                        .Scan("date", 1.0 / 84)
                        .Join("lineorder", "lo_custkey", "customer", "c_custkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.001)
                        .Bucket(3)
                        .Build());

  // Flight 4: all five tables, profit drill-down.
  queries.push_back(q("q4.1")
                        .Scan("lineorder", 1.0)
                        .Scan("customer", 0.2)
                        .Scan("supplier", 0.2)
                        .Scan("part", 2.0 / 5)
                        .Scan("date", 1.0)
                        .Join("lineorder", "lo_custkey", "customer", "c_custkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Join("lineorder", "lo_partkey", "part", "p_partkey")
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.001)
                        .Build());
  queries.push_back(q("q4.2")
                        .Scan("lineorder", 1.0)
                        .Scan("customer", 0.2)
                        .Scan("supplier", 0.2)
                        .Scan("part", 2.0 / 5)
                        .Scan("date", 2.0 / 7)
                        .Join("lineorder", "lo_custkey", "customer", "c_custkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Join("lineorder", "lo_partkey", "part", "p_partkey")
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.001)
                        .Bucket(1)
                        .Build());
  queries.push_back(q("q4.3")
                        .Scan("lineorder", 1.0)
                        .Scan("customer", 0.2)
                        .Scan("supplier", 1.0 / 25)
                        .Scan("part", 1.0 / 25)
                        .Scan("date", 2.0 / 7)
                        .Join("lineorder", "lo_custkey", "customer", "c_custkey")
                        .Join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
                        .Join("lineorder", "lo_partkey", "part", "p_partkey")
                        .Join("lineorder", "lo_orderdate", "date", "d_datekey")
                        .Output(0.001)
                        .Bucket(2)
                        .Build());

  Workload w(std::move(queries));
  w.SetUniformFrequencies();
  return w;
}

QuerySpec MakeParameterizedSsbInstance(const Workload& ssb, int slot,
                                       double jitter, Rng* rng) {
  QuerySpec instance = ssb.query(slot);
  instance.name += "#param";
  for (auto& scan : instance.scans) {
    if (scan.selectivity >= 1.0) continue;  // unfiltered scans stay unfiltered
    double log_sel = std::log(scan.selectivity) +
                     rng->Uniform(-jitter, jitter);
    scan.selectivity = std::clamp(std::exp(log_sel), 1e-6, 1.0);
  }
  return instance;
}

Workload MakeMicroWorkload(const schema::Schema& s) {
  std::vector<QuerySpec> queries;
  queries.push_back(QueryBuilder(&s, "a_join_b")
                        .Scan("A", 1.0)
                        .Scan("B", 0.03)
                        .Join("A", "a_b_id", "B", "b_id")
                        .Output(0.001)
                        .Build());
  queries.push_back(QueryBuilder(&s, "a_join_c")
                        .Scan("A", 1.0)
                        .Scan("C", 0.04)
                        .Join("A", "a_c_id", "C", "c_id")
                        .Output(0.001)
                        .Build());
  Workload w(std::move(queries));
  w.SetUniformFrequencies();
  return w;
}

}  // namespace lpa::workload
