#include "workload/workload.h"

#include <algorithm>

namespace lpa::workload {

int Workload::AddQuery(QuerySpec query) {
  queries_.push_back(std::move(query));
  frequencies_.push_back(0.0);
  return static_cast<int>(queries_.size()) - 1;
}

Status Workload::SetFrequencies(std::vector<double> freqs) {
  if (freqs.size() != queries_.size()) {
    return Status::InvalidArgument("frequency vector size mismatch");
  }
  for (double f : freqs) {
    if (f < 0.0) return Status::InvalidArgument("negative frequency");
  }
  frequencies_ = NormalizeFrequencies(std::move(freqs));
  return Status::OK();
}

void Workload::SetUniformFrequencies() {
  std::fill(frequencies_.begin(), frequencies_.end(), 1.0);
}

std::vector<schema::TableId> Workload::ReferencedTables() const {
  std::vector<schema::TableId> tables;
  for (const auto& q : queries_) {
    for (schema::TableId t : q.tables()) {
      if (std::find(tables.begin(), tables.end(), t) == tables.end()) {
        tables.push_back(t);
      }
    }
  }
  std::sort(tables.begin(), tables.end());
  return tables;
}

std::vector<int> Workload::QueriesTouching(
    const std::vector<schema::TableId>& tables) const {
  std::vector<int> result;
  for (int i = 0; i < num_queries(); ++i) {
    for (schema::TableId t : tables) {
      if (queries_[static_cast<size_t>(i)].References(t)) {
        result.push_back(i);
        break;
      }
    }
  }
  return result;
}

Status Workload::Validate(const schema::Schema& schema) const {
  for (const auto& q : queries_) {
    LPA_RETURN_NOT_OK(q.Validate(schema));
  }
  return Status::OK();
}

std::vector<double> NormalizeFrequencies(std::vector<double> freqs) {
  double max_f = 0.0;
  for (double f : freqs) max_f = std::max(max_f, f);
  if (max_f > 0.0) {
    for (double& f : freqs) f /= max_f;
  }
  return freqs;
}

std::vector<double> OverRepresentedFrequencies(int num_queries, int hot,
                                               double low, double high) {
  std::vector<double> freqs(static_cast<size_t>(num_queries), low);
  freqs.at(static_cast<size_t>(hot)) = high;
  return NormalizeFrequencies(std::move(freqs));
}

std::vector<double> SampleUniformFrequencies(int num_queries, Rng* rng) {
  std::vector<double> freqs(static_cast<size_t>(num_queries));
  for (double& f : freqs) f = rng->Uniform(0.0, 1.0);
  return NormalizeFrequencies(std::move(freqs));
}

std::vector<double> SampleBoostedFrequencies(int num_queries,
                                             const std::vector<int>& boosted,
                                             Rng* rng) {
  std::vector<double> freqs(static_cast<size_t>(num_queries));
  for (int i = 0; i < num_queries; ++i) {
    bool hot = std::find(boosted.begin(), boosted.end(), i) != boosted.end();
    freqs[static_cast<size_t>(i)] =
        hot ? rng->Uniform(0.5, 1.0) : rng->Uniform(0.0, 0.3);
  }
  return NormalizeFrequencies(std::move(freqs));
}

}  // namespace lpa::workload
