#pragma once

#include "schema/schema.h"
#include "workload/workload.h"

namespace lpa::workload {

/// \brief The 13 SSB queries (4 flights) against MakeSsbSchema().
Workload MakeSsbWorkload(const schema::Schema& schema);

/// \brief A 60-query TPC-DS workload against MakeTpcdsSchema() — the paper
/// uses the 60-of-99 subset executable on Postgres-XL; we model the join
/// graphs and selectivity profiles of that subset.
Workload MakeTpcdsWorkload(const schema::Schema& schema);

/// \brief The 22 analytical TPC-CH queries against MakeTpcchSchema().
Workload MakeTpcchWorkload(const schema::Schema& schema);

/// \brief The 2-query microbenchmark of Exp 5 (A⋈B and A⋈C with dimension
/// selectivities between 2% and 5%).
Workload MakeMicroWorkload(const schema::Schema& schema);

/// \brief A randomly parameterized instance of SSB query template `slot`
/// (Sec 3.2: the same OLAP query recurs with different parameter values,
/// i.e. shifted selectivities). The instance keeps the template's structure
/// but jitters every filter's selectivity by up to `jitter` in log space —
/// the input the QueryClassifier / WorkloadMonitor consume in production.
QuerySpec MakeParameterizedSsbInstance(const Workload& ssb, int slot,
                                       double jitter, Rng* rng);

}  // namespace lpa::workload
