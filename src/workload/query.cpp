#include "workload/query.h"

#include <algorithm>

#include "util/logging.h"

namespace lpa::workload {

std::vector<schema::TableId> QuerySpec::tables() const {
  std::vector<schema::TableId> result;
  result.reserve(scans.size());
  for (const auto& scan : scans) result.push_back(scan.table);
  return result;
}

bool QuerySpec::References(schema::TableId table) const {
  return std::any_of(scans.begin(), scans.end(),
                     [table](const TableScan& s) { return s.table == table; });
}

double QuerySpec::SelectivityOf(schema::TableId table) const {
  for (const auto& scan : scans) {
    if (scan.table == table) return scan.selectivity;
  }
  return 1.0;
}

Status QuerySpec::Validate(const schema::Schema& schema) const {
  if (scans.empty()) return Status::InvalidArgument(name + ": no tables");
  for (const auto& scan : scans) {
    if (scan.table < 0 || scan.table >= schema.num_tables()) {
      return Status::InvalidArgument(name + ": scan of unknown table");
    }
    if (scan.selectivity <= 0.0 || scan.selectivity > 1.0) {
      return Status::InvalidArgument(name + ": selectivity out of (0, 1]");
    }
  }
  for (size_t i = 0; i < scans.size(); ++i) {
    for (size_t j = i + 1; j < scans.size(); ++j) {
      if (scans[i].table == scans[j].table) {
        return Status::InvalidArgument(name + ": duplicate table scan");
      }
    }
  }
  for (const auto& join : joins) {
    if (join.equalities.empty()) {
      return Status::InvalidArgument(name + ": empty join predicate");
    }
    schema::TableId lt = join.left_table();
    schema::TableId rt = join.right_table();
    if (lt == rt) return Status::InvalidArgument(name + ": self join");
    if (!References(lt) || !References(rt)) {
      return Status::InvalidArgument(name + ": join references unscanned table");
    }
    for (const auto& eq : join.equalities) {
      if (eq.left.table != lt || eq.right.table != rt) {
        return Status::InvalidArgument(
            name + ": compound join equality crosses table pairs");
      }
      for (const auto& ref : {eq.left, eq.right}) {
        const auto& table = schema.table(ref.table);
        if (ref.column < 0 ||
            ref.column >= static_cast<schema::ColumnId>(table.columns.size())) {
          return Status::InvalidArgument(name + ": unknown join column");
        }
      }
    }
  }
  // Connectivity check over the join graph (single-table queries pass).
  if (scans.size() > 1) {
    std::vector<schema::TableId> frontier{scans.front().table};
    std::vector<bool> visited(static_cast<size_t>(schema.num_tables()), false);
    visited[static_cast<size_t>(scans.front().table)] = true;
    size_t reached = 1;
    while (!frontier.empty()) {
      schema::TableId t = frontier.back();
      frontier.pop_back();
      for (const auto& join : joins) {
        schema::TableId other = -1;
        if (join.left_table() == t) other = join.right_table();
        if (join.right_table() == t) other = join.left_table();
        if (other >= 0 && !visited[static_cast<size_t>(other)]) {
          visited[static_cast<size_t>(other)] = true;
          ++reached;
          frontier.push_back(other);
        }
      }
    }
    if (reached != scans.size()) {
      return Status::InvalidArgument(name + ": join graph not connected");
    }
  }
  return Status::OK();
}

schema::ColumnRef QueryBuilder::MustResolve(const std::string& table,
                                            const std::string& column) const {
  auto ref = schema_->Resolve(table, column);
  if (!ref.ok()) {
    LPA_LOG(Error) << spec_.name << ": " << ref.status().ToString();
    std::abort();
  }
  return *ref;
}

QueryBuilder& QueryBuilder::Scan(const std::string& table, double selectivity) {
  schema::TableId id = schema_->TableIndex(table);
  LPA_CHECK(id >= 0);
  spec_.scans.push_back(TableScan{id, selectivity});
  return *this;
}

QueryBuilder& QueryBuilder::Join(const std::string& t1, const std::string& c1,
                                 const std::string& t2, const std::string& c2) {
  JoinPredicate p;
  p.equalities.push_back(JoinEquality{MustResolve(t1, c1), MustResolve(t2, c2)});
  spec_.joins.push_back(std::move(p));
  return *this;
}

QueryBuilder& QueryBuilder::AndJoin(const std::string& t1, const std::string& c1,
                                    const std::string& t2, const std::string& c2) {
  LPA_CHECK(!spec_.joins.empty());
  spec_.joins.back().equalities.push_back(
      JoinEquality{MustResolve(t1, c1), MustResolve(t2, c2)});
  return *this;
}

QueryBuilder& QueryBuilder::Output(double fraction) {
  spec_.output_fraction = fraction;
  return *this;
}

QueryBuilder& QueryBuilder::Bucket(int bucket) {
  spec_.selectivity_bucket = bucket;
  return *this;
}

QuerySpec QueryBuilder::Build() const {
  Status st = spec_.Validate(*schema_);
  if (!st.ok()) {
    LPA_LOG(Error) << st.ToString();
    std::abort();
  }
  return spec_;
}

}  // namespace lpa::workload
