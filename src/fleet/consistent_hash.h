#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lpa::fleet {

/// \brief Consistent-hash ring with virtual nodes: a stable key→node
/// assignment that survives node add/remove with bounded key movement.
///
/// Each node contributes `vnodes` points on a 64-bit ring, hashed from
/// (node, replica); a key is owned by the first point clockwise of
/// Hash64(key). Because every node's points are a pure function of its id,
/// adding a node moves exactly the keys that now land on the new node's
/// points (expected ~1/(n+1) of them) and removing a node moves exactly the
/// keys it owned — no assignment between surviving nodes ever changes.
/// That bounded-remap property is what the fleet tests assert.
///
/// Not thread-safe; FleetRouter guards it with its own mutex.
class ConsistentHashRing {
 public:
  /// \brief `vnodes` points per node; more points = smoother balance at the
  /// cost of a larger sorted array (lookups stay O(log(nodes * vnodes))).
  explicit ConsistentHashRing(int vnodes = 64);

  /// \brief Add `node`'s points to the ring. Aborts on duplicates.
  void AddNode(uint64_t node);

  /// \brief Remove `node`'s points. Aborts if the node is absent.
  void RemoveNode(uint64_t node);

  bool Contains(uint64_t node) const;
  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::vector<uint64_t>& nodes() const { return nodes_; }

  /// \brief The node owning `key`. The ring must not be empty.
  uint64_t NodeFor(uint64_t key) const;

 private:
  int vnodes_;
  /// Sorted (ring position, node id); NodeFor binary-searches it.
  std::vector<std::pair<uint64_t, uint64_t>> points_;
  std::vector<uint64_t> nodes_;  // insertion order
};

}  // namespace lpa::fleet
