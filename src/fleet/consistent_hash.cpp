#include "fleet/consistent_hash.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace lpa::fleet {

ConsistentHashRing::ConsistentHashRing(int vnodes) : vnodes_(vnodes) {
  LPA_CHECK(vnodes_ >= 1);
}

void ConsistentHashRing::AddNode(uint64_t node) {
  LPA_CHECK(!Contains(node));
  points_.reserve(points_.size() + static_cast<size_t>(vnodes_));
  for (int replica = 0; replica < vnodes_; ++replica) {
    // Point positions depend only on (node, replica), never on ring
    // membership — the root of the bounded-remap guarantee.
    uint64_t position =
        HashCombine(Hash64(node), Hash64(static_cast<uint64_t>(replica)));
    points_.emplace_back(position, node);
  }
  std::sort(points_.begin(), points_.end());
  nodes_.push_back(node);
}

void ConsistentHashRing::RemoveNode(uint64_t node) {
  LPA_CHECK(Contains(node));
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [node](const std::pair<uint64_t, uint64_t>& p) {
                                 return p.second == node;
                               }),
                points_.end());
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node), nodes_.end());
}

bool ConsistentHashRing::Contains(uint64_t node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

uint64_t ConsistentHashRing::NodeFor(uint64_t key) const {
  LPA_CHECK(!points_.empty());
  uint64_t position = Hash64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), position,
      [](const std::pair<uint64_t, uint64_t>& point, uint64_t pos) {
        return point.first < pos;
      });
  if (it == points_.end()) it = points_.begin();  // wrap around the ring
  return it->second;
}

}  // namespace lpa::fleet
