#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serving/model_registry.h"

namespace lpa::fleet {

/// \brief Per-tenant namespaces of versioned serving models: each tenant
/// (one managed database in the paper's cloud framing) owns its own
/// `serving::ModelRegistry`, so tenants hot-swap independently — publishing
/// v3 for tenant A never touches tenant B's current version.
///
/// Registry pointers are stable for the directory's lifetime (tenants are
/// never erased), so the router and server workers may cache them.
///
/// Cross-tenant batching falls out of `PublishShared`: tenants whose models
/// share one `ServingModel` instance (a shared base model — the common
/// fleet pattern for tenants on the same architecture and weights) also
/// share its `InferenceBatcher`, so their concurrent rollouts coalesce into
/// joint Q-network passes. Results stay bit-identical to serial per-tenant
/// inference because `QValuesBatch` computes every row independently.
class TenantDirectory {
 public:
  /// \brief The tenant's registry, created empty on first sight.
  serving::ModelRegistry* GetOrCreate(const std::string& tenant);

  /// \brief The tenant's registry, or null if it was never created.
  serving::ModelRegistry* Find(const std::string& tenant) const;

  /// \brief Publish one shared servable into every named tenant's
  /// namespace; each tenant assigns its own version number to it.
  void PublishShared(const std::vector<std::string>& tenants,
                     std::shared_ptr<serving::ServingModel> model);

  /// \brief Build one shared servable from an agent snapshot — optionally
  /// with the quantized fast path (`quantize.enabled`; ServingModel's
  /// calibration gate decides whether the integer path actually serves) —
  /// and publish it into every named tenant's namespace. Returns the shared
  /// model, or the snapshot-restore error.
  Result<std::shared_ptr<serving::ServingModel>> PublishSharedSnapshot(
      const std::vector<std::string>& tenants, const schema::Schema* schema,
      workload::Workload workload, advisor::AdvisorConfig config,
      const costmodel::CostModel* cost_model, std::istream& snapshot,
      serving::InferenceBatcher::Config batch = {},
      serving::QuantizeSpec quantize = {});

  std::vector<std::string> Tenants() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<serving::ModelRegistry>> tenants_;
};

}  // namespace lpa::fleet
