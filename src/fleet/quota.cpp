#include "fleet/quota.h"

#include <algorithm>

namespace lpa::fleet {

TokenBucket::TokenBucket(QuotaConfig config, Clock::time_point now)
    : config_(config), tokens_(config.burst), last_refill_(now) {}

bool TokenBucket::TryAcquire(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.unlimited()) return true;
  if (now > last_refill_ && config_.rate_per_second > 0.0) {
    double elapsed = std::chrono::duration<double>(now - last_refill_).count();
    tokens_ = std::min(config_.burst,
                       tokens_ + elapsed * config_.rate_per_second);
  }
  last_refill_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  if (tokens_ < 0.0) ++violations_;  // unreachable unless enforcement breaks
  return true;
}

void TokenBucket::Reconfigure(QuotaConfig config, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  tokens_ = config.burst;
  last_refill_ = now;
}

QuotaConfig TokenBucket::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

double TokenBucket::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

uint64_t TokenBucket::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

}  // namespace lpa::fleet
