#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fleet/router.h"

namespace lpa::fleet {

/// \brief Multi-tenant traffic shape replayed against a FleetRouter:
/// closed-loop client threads that pick a tenant per request from a
/// Zipf-distributed popularity ranking (tenant 0 hottest), so a few hot
/// tenants dominate while a long tail trickles — the mix that makes
/// per-tenant quotas and fairness observable.
struct FleetLoadgenOptions {
  int tenants = 100;
  /// Zipf exponent of the tenant-popularity distribution (0 = uniform).
  double zipf_theta = 1.2;
  /// Closed-loop concurrent clients (each waits for its response).
  int clients = 4;
  double duration_seconds = 2.0;
  /// Per-request deadline; <= 0 uses the shard-server default.
  double deadline_seconds = -1.0;
  /// Seed of the tenant/frequency stream (client i forks seed ^ i).
  uint64_t seed = 42;
  /// Dimension of the frequency vectors (the workload's query count).
  int num_queries = 1;
};

/// \brief Canonical tenant naming shared by the loadgen and its callers:
/// "tenant-0000", "tenant-0001", ... (index = popularity rank, 0 hottest).
std::string TenantName(int index);

/// \brief Outcomes and latency quantiles of one tenant.
struct TenantOutcome {
  std::string tenant;
  uint64_t submitted = 0;
  uint64_t quota_rejected = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  /// Latency of completed requests (seconds); NaN when none completed.
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// \brief Aggregate + per-tenant outcome of one fleet loadgen run.
struct FleetLoadgenReport {
  uint64_t submitted = 0;
  uint64_t quota_rejected = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;
  double latency_p50 = 0.0, latency_p95 = 0.0, latency_p99 = 0.0;
  double latency_mean = 0.0;
  /// Completed requests per (tenant-local) model version.
  std::map<uint64_t, uint64_t> completed_per_version;
  /// Indexed by tenant popularity rank (same order as TenantName).
  std::vector<TenantOutcome> per_tenant;
  /// Router-reported token-bucket violations after the run; must be 0.
  uint64_t quota_violations = 0;

  /// \brief Every submitted request resolved into exactly one bucket, in
  /// the aggregate and per tenant.
  bool CountersConsistent() const;
};

/// \brief Replay Zipf-popular multi-tenant load against `router` for the
/// configured duration. `at_halftime` (optional) runs once on a side thread
/// halfway through — the hook used to hot-swap tenant models or resize the
/// shard fleet under load.
FleetLoadgenReport RunFleetLoadgen(
    FleetRouter* router, const FleetLoadgenOptions& options,
    const std::function<void()>& at_halftime = nullptr);

}  // namespace lpa::fleet
