#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/consistent_hash.h"
#include "fleet/quota.h"
#include "fleet/tenant_directory.h"
#include "serving/server.h"
#include "util/status.h"

namespace lpa::fleet {

/// \brief Fleet shape: how many AdvisorServer shards, how each is
/// configured, and the admission quota every new tenant starts with.
struct FleetConfig {
  /// Initial shard count (AdvisorServer instances; >= 1).
  int shards = 2;
  /// Virtual-node points each shard contributes to the consistent-hash ring.
  int vnodes_per_shard = 64;
  /// Per-shard server configuration (worker pool, queue, batching window).
  serving::ServerConfig server;
  /// Admission quota applied to tenants on first sight (default unlimited).
  QuotaConfig default_quota;
};

/// \brief Resolved per-tenant accounting. Once every future a tenant
/// submitted has resolved, `submitted` equals the sum of the other five.
struct TenantStats {
  uint64_t submitted = 0;
  uint64_t quota_rejected = 0;  ///< bounced by the tenant's token bucket
  uint64_t completed = 0;
  uint64_t rejected = 0;  ///< shard admission control / shutdown
  uint64_t shed = 0;      ///< deadline passed while queued
  uint64_t failed = 0;    ///< no model published / aborted shutdown

  uint64_t accepted() const { return submitted - quota_rejected; }
  bool Settled() const {
    return submitted ==
           quota_rejected + completed + rejected + shed + failed;
  }
};

/// \brief The multi-tenant serving front end: shards tenants across N
/// in-process `AdvisorServer` instances via a consistent-hash ring, resolves
/// each request against the tenant's own `ModelRegistry` namespace, and
/// meters admission with a per-tenant token bucket so one hot tenant cannot
/// starve the rest.
///
/// Request path: quota check (reject with ResourceExhausted when the
/// bucket is dry) → ring lookup (tenant → shard, stable
/// under shard add/remove) → shard `SubmitAsync` carrying the tenant's
/// registry and stats sink. Every submitted request resolves exactly once,
/// with the same guarantees the single-tenant server gives.
///
/// Shards can be added and removed while serving: `AddShard` only pulls
/// tenants onto the new shard, `RemoveShard` drains the leaving server so
/// its queued requests complete (zero drops) — both remaps are bounded by
/// the ring's consistency property. Since every shard serves any tenant's
/// registry on demand, a tenant moving between shards needs no state
/// migration.
class FleetRouter {
 public:
  FleetRouter(TenantDirectory* directory, FleetConfig config);
  ~FleetRouter();  // Stop(kDrain)

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// \brief Start every shard server and open admissions.
  Status Start();

  /// \brief Stop every shard (drain or abort); idempotent.
  void Stop(serving::AdvisorServer::StopMode mode =
                serving::AdvisorServer::StopMode::kDrain);

  bool running() const;

  /// \brief Submit one suggestion for `tenant`. Unknown tenants are created
  /// with the default quota and an empty model namespace (requests then fail
  /// with FailedPrecondition until something is published for them).
  std::future<serving::SuggestResponse> SubmitAsync(
      const std::string& tenant, std::vector<double> frequencies,
      double deadline_seconds = -1.0);

  /// \brief Blocking convenience wrapper around SubmitAsync.
  serving::SuggestResponse Suggest(const std::string& tenant,
                                   std::vector<double> frequencies,
                                   double deadline_seconds = -1.0);

  /// \brief Add one shard (started immediately when the router is running).
  /// Returns the new shard's id.
  uint64_t AddShard();

  /// \brief Retire a shard: its ring points vanish (tenants remap to
  /// survivors) and its server drains, completing everything it had queued.
  /// Fails on the last shard or an unknown id.
  Status RemoveShard(uint64_t shard_id);

  std::vector<uint64_t> shard_ids() const;
  size_t num_shards() const;

  /// \brief The shard currently owning `tenant` (pure ring lookup — does
  /// not create the tenant).
  uint64_t ShardOf(const std::string& tenant) const;

  /// \brief Replace `tenant`'s quota (bucket resets to the new burst).
  void SetQuota(const std::string& tenant, QuotaConfig quota);

  TenantStats tenant_stats(const std::string& tenant) const;

  /// \brief Sum of every tenant's stats.
  TenantStats totals() const;

  /// \brief Sum of every tenant's token-bucket violations — enforcement
  /// self-check, must be 0 (also exported as fleet.quota_violation.count).
  uint64_t quota_violations() const;

  TenantDirectory* directory() const { return directory_; }
  const FleetConfig& config() const { return config_; }

 private:
  struct TenantEntry {
    serving::ModelRegistry* registry = nullptr;
    TokenBucket bucket;
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> quota_rejected{0};
    /// Outcome classification written by the shard server on resolution.
    serving::RequestSink sink;

    explicit TenantEntry(QuotaConfig quota) : bucket(quota) {}
  };

  struct Shard {
    uint64_t id = 0;
    std::shared_ptr<serving::AdvisorServer> server;
  };

  /// Both require mu_ held.
  TenantEntry* GetOrCreateEntryLocked(const std::string& tenant);
  std::shared_ptr<serving::AdvisorServer> ShardServerLocked(
      const std::string& tenant) const;

  TenantDirectory* directory_;
  FleetConfig config_;

  /// Guards running_, shards_, ring_, and the tenant map (entry pointers
  /// stay stable once created; their counters are atomics).
  mutable std::mutex mu_;
  bool running_ = false;
  uint64_t next_shard_id_ = 0;
  std::vector<Shard> shards_;
  ConsistentHashRing ring_;
  std::map<std::string, std::unique_ptr<TenantEntry>> tenants_;
};

}  // namespace lpa::fleet
