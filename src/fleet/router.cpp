#include "fleet/router.h"

#include <algorithm>
#include <utility>

#include "telemetry/registry.h"
#include "util/hash.h"
#include "util/logging.h"

namespace lpa::fleet {

namespace {

struct FleetMetrics {
  telemetry::Counter& submitted;
  telemetry::Counter& accepted;
  telemetry::Counter& quota_rejected;
  telemetry::Counter& shard_adds;
  telemetry::Counter& shard_removes;
  telemetry::Gauge& shards;
  /// Enforcement self-check; must stay 0 (asserted by tests and loadgen).
  telemetry::Gauge& quota_violation;

  static FleetMetrics& Get() {
    auto& reg = telemetry::MetricsRegistry::Global();
    static FleetMetrics* m = new FleetMetrics{
        reg.GetCounter("fleet.submitted.count"),
        reg.GetCounter("fleet.accepted.count"),
        reg.GetCounter("fleet.quota_rejected.count"),
        reg.GetCounter("fleet.shard_adds.count"),
        reg.GetCounter("fleet.shard_removes.count"),
        reg.GetGauge("fleet.shards.count"),
        reg.GetGauge("fleet.quota_violation.count")};
    return *m;
  }
};

/// A future already resolved with `response` (quota / routing rejections
/// never reach a shard queue).
std::future<serving::SuggestResponse> ResolvedFuture(
    serving::SuggestResponse response) {
  std::promise<serving::SuggestResponse> promise;
  std::future<serving::SuggestResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

}  // namespace

FleetRouter::FleetRouter(TenantDirectory* directory, FleetConfig config)
    : directory_(directory),
      config_(config),
      ring_(config.vnodes_per_shard) {
  LPA_CHECK(directory_ != nullptr);
  LPA_CHECK(config_.shards >= 1);
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < config_.shards; ++i) {
    uint64_t id = next_shard_id_++;
    shards_.push_back(Shard{
        id, std::make_shared<serving::AdvisorServer>(nullptr, config_.server)});
    ring_.AddNode(id);
  }
  FleetMetrics::Get().shards.Set(static_cast<double>(shards_.size()));
}

FleetRouter::~FleetRouter() { Stop(serving::AdvisorServer::StopMode::kDrain); }

Status FleetRouter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("fleet already running");
  for (Shard& shard : shards_) {
    LPA_RETURN_NOT_OK(shard.server->Start());
  }
  running_ = true;
  return Status::OK();
}

void FleetRouter::Stop(serving::AdvisorServer::StopMode mode) {
  std::vector<Shard> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    shards = shards_;  // copies of the shared_ptrs; shards_ keeps them
  }
  for (Shard& shard : shards) shard.server->Stop(mode);
}

bool FleetRouter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

FleetRouter::TenantEntry* FleetRouter::GetOrCreateEntryLocked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    auto entry = std::make_unique<TenantEntry>(config_.default_quota);
    entry->registry = directory_->GetOrCreate(tenant);
    it = tenants_.emplace(tenant, std::move(entry)).first;
  }
  return it->second.get();
}

std::shared_ptr<serving::AdvisorServer> FleetRouter::ShardServerLocked(
    const std::string& tenant) const {
  if (ring_.empty()) return nullptr;
  uint64_t id = ring_.NodeFor(HashString(tenant));
  for (const Shard& shard : shards_) {
    if (shard.id == id) return shard.server;
  }
  return nullptr;
}

std::future<serving::SuggestResponse> FleetRouter::SubmitAsync(
    const std::string& tenant, std::vector<double> frequencies,
    double deadline_seconds) {
  auto& metrics = FleetMetrics::Get();
  TenantEntry* entry;
  std::shared_ptr<serving::AdvisorServer> server;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry = GetOrCreateEntryLocked(tenant);
    if (running_) server = ShardServerLocked(tenant);
  }
  entry->submitted.fetch_add(1, std::memory_order_relaxed);
  metrics.submitted.Add();

  if (server == nullptr) {
    entry->sink.rejected.fetch_add(1, std::memory_order_relaxed);
    return ResolvedFuture(serving::SuggestResponse{
        Status::Unavailable("fleet not running"), 0, {}, 0.0, 0.0});
  }
  if (!entry->bucket.TryAcquire()) {
    entry->quota_rejected.fetch_add(1, std::memory_order_relaxed);
    metrics.quota_rejected.Add();
    return ResolvedFuture(serving::SuggestResponse{
        Status::ResourceExhausted("tenant '" + tenant + "' over quota"), 0,
        {}, 0.0, 0.0});
  }
  metrics.accepted.Add();
  // A shard racing Stop/RemoveShard rejects at its own admission gate; the
  // shared_ptr keeps the server alive for the call either way.
  return server->SubmitAsync(entry->registry, std::move(frequencies),
                             deadline_seconds, &entry->sink);
}

serving::SuggestResponse FleetRouter::Suggest(const std::string& tenant,
                                              std::vector<double> frequencies,
                                              double deadline_seconds) {
  return SubmitAsync(tenant, std::move(frequencies), deadline_seconds).get();
}

uint64_t FleetRouter::AddShard() {
  auto& metrics = FleetMetrics::Get();
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_shard_id_++;
    Shard shard{
        id, std::make_shared<serving::AdvisorServer>(nullptr, config_.server)};
    if (running_) LPA_CHECK(shard.server->Start().ok());
    shards_.push_back(std::move(shard));
    ring_.AddNode(id);  // only keys landing on the new points move
    metrics.shards.Set(static_cast<double>(shards_.size()));
  }
  metrics.shard_adds.Add();
  return id;
}

Status FleetRouter::RemoveShard(uint64_t shard_id) {
  auto& metrics = FleetMetrics::Get();
  std::shared_ptr<serving::AdvisorServer> leaving;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shards_.size() <= 1) {
      return Status::FailedPrecondition("cannot remove the last shard");
    }
    auto it = std::find_if(shards_.begin(), shards_.end(),
                           [shard_id](const Shard& s) {
                             return s.id == shard_id;
                           });
    if (it == shards_.end()) {
      return Status::NotFound("no shard " + std::to_string(shard_id));
    }
    leaving = it->server;
    shards_.erase(it);
    ring_.RemoveNode(shard_id);  // only this shard's tenants remap
    metrics.shards.Set(static_cast<double>(shards_.size()));
  }
  // Drain outside the lock: new submits already route to survivors, and
  // every request the leaving shard had queued completes — zero drops.
  leaving->Stop(serving::AdvisorServer::StopMode::kDrain);
  metrics.shard_removes.Add();
  return Status::OK();
}

std::vector<uint64_t> FleetRouter::shard_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(shards_.size());
  for (const Shard& shard : shards_) ids.push_back(shard.id);
  return ids;
}

size_t FleetRouter::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

uint64_t FleetRouter::ShardOf(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  LPA_CHECK(!ring_.empty());
  return ring_.NodeFor(HashString(tenant));
}

void FleetRouter::SetQuota(const std::string& tenant, QuotaConfig quota) {
  TenantEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry = GetOrCreateEntryLocked(tenant);
  }
  entry->bucket.Reconfigure(quota);
}

TenantStats FleetRouter::tenant_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return TenantStats{};
  const TenantEntry& entry = *it->second;
  TenantStats stats;
  stats.submitted = entry.submitted.load(std::memory_order_relaxed);
  stats.quota_rejected =
      entry.quota_rejected.load(std::memory_order_relaxed);
  stats.completed = entry.sink.completed.load(std::memory_order_relaxed);
  stats.rejected = entry.sink.rejected.load(std::memory_order_relaxed);
  stats.shed = entry.sink.shed.load(std::memory_order_relaxed);
  stats.failed = entry.sink.failed.load(std::memory_order_relaxed);
  return stats;
}

TenantStats FleetRouter::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  TenantStats totals;
  for (const auto& [name, entry] : tenants_) {
    totals.submitted += entry->submitted.load(std::memory_order_relaxed);
    totals.quota_rejected +=
        entry->quota_rejected.load(std::memory_order_relaxed);
    totals.completed += entry->sink.completed.load(std::memory_order_relaxed);
    totals.rejected += entry->sink.rejected.load(std::memory_order_relaxed);
    totals.shed += entry->sink.shed.load(std::memory_order_relaxed);
    totals.failed += entry->sink.failed.load(std::memory_order_relaxed);
  }
  return totals;
}

uint64_t FleetRouter::quota_violations() const {
  uint64_t violations = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : tenants_) {
      violations += entry->bucket.violations();
    }
  }
  FleetMetrics::Get().quota_violation.Set(static_cast<double>(violations));
  return violations;
}

}  // namespace lpa::fleet
