#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace lpa::fleet {

/// \brief Admission quota of one tenant: a token bucket with `burst`
/// capacity refilled at `rate_per_second`. `burst <= 0` means unlimited.
/// `rate_per_second == 0` with a positive burst grants exactly `burst`
/// admissions ever — the deterministic configuration the fairness tests
/// use to assert a hot tenant is capped at a precise count.
struct QuotaConfig {
  double rate_per_second = 0.0;
  double burst = 0.0;

  bool unlimited() const { return burst <= 0.0; }
};

/// \brief Token-bucket admission meter (one per tenant in the fleet
/// router). Thread-safe; one mutex per bucket, so tenants never contend
/// with each other on admission.
///
/// The bucket self-checks its enforcement: a grant that drives the balance
/// negative is counted as a violation. By construction that cannot happen —
/// `violations()` (exported as the `fleet.quota_violation.count` gauge) must
/// stay 0, and the loadgen exits non-zero if it ever does not.
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TokenBucket(QuotaConfig config,
                       Clock::time_point now = Clock::now());

  /// \brief Take one token (refilling for the time since the last call
  /// first). False = over quota, the caller must reject the request.
  bool TryAcquire(Clock::time_point now = Clock::now());

  /// \brief Replace the quota and reset the balance to the new burst.
  void Reconfigure(QuotaConfig config, Clock::time_point now = Clock::now());

  QuotaConfig config() const;
  double tokens() const;
  uint64_t violations() const;

 private:
  mutable std::mutex mu_;
  QuotaConfig config_;
  double tokens_;
  Clock::time_point last_refill_;
  uint64_t violations_ = 0;
};

}  // namespace lpa::fleet
