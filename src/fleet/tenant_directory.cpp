#include "fleet/tenant_directory.h"

#include <utility>

#include "telemetry/registry.h"
#include "util/logging.h"

namespace lpa::fleet {

serving::ModelRegistry* TenantDirectory::GetOrCreate(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, std::make_unique<serving::ModelRegistry>())
             .first;
    static telemetry::Gauge& tenant_gauge =
        telemetry::MetricsRegistry::Global().GetGauge("fleet.tenants.count");
    tenant_gauge.Set(static_cast<double>(tenants_.size()));
  }
  return it->second.get();
}

serving::ModelRegistry* TenantDirectory::Find(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void TenantDirectory::PublishShared(
    const std::vector<std::string>& tenants,
    std::shared_ptr<serving::ServingModel> model) {
  LPA_CHECK(model != nullptr);
  for (const std::string& tenant : tenants) {
    GetOrCreate(tenant)->Publish(model);
  }
}

Result<std::shared_ptr<serving::ServingModel>>
TenantDirectory::PublishSharedSnapshot(
    const std::vector<std::string>& tenants, const schema::Schema* schema,
    workload::Workload workload, advisor::AdvisorConfig config,
    const costmodel::CostModel* cost_model, std::istream& snapshot,
    serving::InferenceBatcher::Config batch,
    serving::QuantizeSpec quantize) {
  Result<std::shared_ptr<serving::ServingModel>> model =
      serving::ServingModel::FromSnapshot(schema, std::move(workload),
                                          std::move(config), cost_model,
                                          snapshot, batch, quantize);
  if (!model.ok()) return model;
  PublishShared(tenants, model.value());
  return model;
}

std::vector<std::string> TenantDirectory::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, registry] : tenants_) names.push_back(name);
  return names;
}

size_t TenantDirectory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace lpa::fleet
