#include "fleet/fleet_loadgen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/workload.h"

namespace lpa::fleet {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-client, per-tenant tally merged single-threaded after the run.
struct TenantTally {
  uint64_t submitted = 0;
  uint64_t quota_rejected = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  std::vector<double> latencies;  // completed only
  std::map<uint64_t, uint64_t> completed_per_version;

  void Absorb(const serving::SuggestResponse& response) {
    switch (response.status.code()) {
      case Status::Code::kOk:
        latencies.push_back(response.latency_seconds);
        ++completed_per_version[response.model_version];
        break;
      case Status::Code::kDeadlineExceeded:
        ++shed;
        break;
      case Status::Code::kResourceExhausted:
        ++quota_rejected;
        break;
      case Status::Code::kUnavailable:
        ++rejected;
        break;
      default:
        ++failed;
        break;
    }
  }
};

std::vector<TenantTally> ClosedLoopClient(FleetRouter* router,
                                          const FleetLoadgenOptions& options,
                                          const ZipfSampler& popularity,
                                          uint64_t seed,
                                          Clock::time_point end) {
  std::vector<TenantTally> tallies(static_cast<size_t>(options.tenants));
  Rng rng(seed);
  while (Clock::now() < end) {
    // Popularity rank 1 (hottest) is tenant index 0.
    size_t tenant = static_cast<size_t>(popularity.Sample(&rng) - 1);
    std::vector<double> frequencies =
        workload::SampleUniformFrequencies(options.num_queries, &rng);
    ++tallies[tenant].submitted;
    tallies[tenant].Absorb(router->Suggest(TenantName(static_cast<int>(tenant)),
                                           std::move(frequencies),
                                           options.deadline_seconds));
  }
  return tallies;
}

}  // namespace

std::string TenantName(int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tenant-%04d", index);
  return buf;
}

bool FleetLoadgenReport::CountersConsistent() const {
  if (submitted !=
      quota_rejected + completed + rejected + shed + failed) {
    return false;
  }
  for (const TenantOutcome& t : per_tenant) {
    if (t.submitted !=
        t.quota_rejected + t.completed + t.rejected + t.shed + t.failed) {
      return false;
    }
  }
  return true;
}

FleetLoadgenReport RunFleetLoadgen(FleetRouter* router,
                                   const FleetLoadgenOptions& options,
                                   const std::function<void()>& at_halftime) {
  LPA_CHECK(options.tenants >= 1);
  LPA_CHECK(options.num_queries >= 1);
  const ZipfSampler popularity(options.tenants,
                               std::max(0.0, options.zipf_theta));
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));

  std::thread swapper;
  if (at_halftime) {
    Clock::time_point halftime =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        options.duration_seconds / 2.0));
    swapper = std::thread([at_halftime, halftime] {
      std::this_thread::sleep_until(halftime);
      at_halftime();
    });
  }

  std::vector<std::vector<TenantTally>> per_client(
      static_cast<size_t>(std::max(1, options.clients)));
  std::vector<std::thread> clients;
  clients.reserve(per_client.size());
  for (size_t i = 0; i < per_client.size(); ++i) {
    clients.emplace_back([&, i] {
      per_client[i] = ClosedLoopClient(router, options, popularity,
                                       HashCombine(options.seed, i), end);
    });
  }
  for (auto& client : clients) client.join();
  if (swapper.joinable()) swapper.join();

  FleetLoadgenReport report;
  report.per_tenant.resize(static_cast<size_t>(options.tenants));
  std::vector<double> all_latencies;
  std::vector<std::vector<double>> tenant_latencies(
      static_cast<size_t>(options.tenants));
  for (const auto& tallies : per_client) {
    for (size_t t = 0; t < tallies.size(); ++t) {
      const TenantTally& tally = tallies[t];
      TenantOutcome& outcome = report.per_tenant[t];
      outcome.submitted += tally.submitted;
      outcome.quota_rejected += tally.quota_rejected;
      outcome.completed += tally.latencies.size();
      outcome.rejected += tally.rejected;
      outcome.shed += tally.shed;
      outcome.failed += tally.failed;
      tenant_latencies[t].insert(tenant_latencies[t].end(),
                                 tally.latencies.begin(),
                                 tally.latencies.end());
      for (const auto& [version, count] : tally.completed_per_version) {
        report.completed_per_version[version] += count;
      }
    }
  }
  for (size_t t = 0; t < report.per_tenant.size(); ++t) {
    TenantOutcome& outcome = report.per_tenant[t];
    outcome.tenant = TenantName(static_cast<int>(t));
    outcome.p50 = Quantile(tenant_latencies[t], 0.50);
    outcome.p95 = Quantile(tenant_latencies[t], 0.95);
    outcome.p99 = Quantile(tenant_latencies[t], 0.99);
    report.submitted += outcome.submitted;
    report.quota_rejected += outcome.quota_rejected;
    report.completed += outcome.completed;
    report.rejected += outcome.rejected;
    report.shed += outcome.shed;
    report.failed += outcome.failed;
    all_latencies.insert(all_latencies.end(), tenant_latencies[t].begin(),
                         tenant_latencies[t].end());
  }

  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.throughput_qps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.completed) / report.wall_seconds
          : 0.0;
  report.latency_mean = Mean(all_latencies);
  report.latency_p50 = Quantile(all_latencies, 0.50);
  report.latency_p95 = Quantile(all_latencies, 0.95);
  report.latency_p99 = Quantile(all_latencies, 0.99);
  report.quota_violations = router->quota_violations();
  return report;
}

}  // namespace lpa::fleet
