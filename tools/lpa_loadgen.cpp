// Load generator for the serving subsystem: trains a small advisor, wraps
// it as a servable model, and replays workload-frequency traffic against an
// serving::AdvisorServer at one or more worker-thread counts, reporting
// p50/p95/p99 latency, throughput, and rejected/shed counts per sweep point
// (table + BENCH_serving.json via bench::BenchReport).
//
//   $ ./build/tools/lpa_loadgen --workers 1,2,8 --duration 5 --hotswap
//   $ ./build/tools/lpa_loadgen --mode open --qps 200 --deadline 0.05
//
// --hotswap publishes a snapshot-restored model version halfway through
// each run; completed requests are then accounted per model version and the
// tool verifies none were dropped during the swap. The tool exits non-zero
// if any correctness counter is violated (submitted != completed + rejected
// + shed + failed, a non-OK unexpected status, or per-version counts that
// do not sum to the completed total) — throughput is hardware-dependent and
// never asserted, so the check is meaningful on 1-CPU hosts too.

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/serialization.h"
#include "bench/bench_common.h"
#include "serving/loadgen.h"
#include "serving/model_registry.h"
#include "serving/server.h"
#include "util/cli.h"

namespace {

std::vector<int> ParseWorkerList(const std::string& spec, std::string* error) {
  std::vector<int> workers;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      int w = std::stoi(item);
      if (w < 1) throw std::invalid_argument("non-positive");
      workers.push_back(w);
    } catch (const std::exception&) {
      *error = "--workers expects a comma-separated list of positive "
               "integers, got '" + spec + "'";
      return {};
    }
  }
  if (workers.empty()) *error = "--workers list is empty";
  return workers;
}

std::string Ms(double seconds) {
  return lpa::FormatDouble(seconds * 1e3, 3) + "ms";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpa;

  cli::CommonOptions common;
  std::string schema_name = "ssb";
  std::string workers_spec = "1,2,8";
  std::string mode = "closed";
  int episodes = 40;
  int clients = 4;
  int max_batch = 8;
  int queue_capacity = 256;
  double qps = 100.0;
  double duration = 5.0;
  double batch_window = 200e-6;
  double deadline = 0.0;
  bool hotswap = false;

  cli::FlagParser parser;
  common.Register(&parser);
  parser.AddString("schema", "ssb|tpcds|tpcch|micro", &schema_name);
  parser.AddInt("episodes", "offline training episodes", &episodes);
  parser.AddString("workers", "comma list of worker-thread counts",
                   &workers_spec);
  parser.AddString("mode", "closed|open", &mode);
  parser.AddInt("clients", "closed-loop concurrent clients", &clients);
  parser.AddDouble("qps", "open-loop target arrival rate", &qps);
  parser.AddDouble("duration", "seconds per sweep point", &duration);
  parser.AddDouble("batch-window", "batching window seconds", &batch_window);
  parser.AddInt("max-batch", "max coalesced rows per matrix pass", &max_batch);
  parser.AddInt("queue-capacity", "bounded request queue size",
                &queue_capacity);
  parser.AddDouble("deadline", "per-request deadline seconds (0 = none)",
                   &deadline);
  parser.AddBool("hotswap", "publish a new model version at halftime",
                 &hotswap);
  std::string error;
  if (!parser.Parse(argc, argv, &error) || !common.Validate(&error)) {
    std::cerr << error << "\n" << parser.Usage(argv[0]);
    return 2;
  }
  if (mode != "closed" && mode != "open") {
    std::cerr << "--mode must be closed or open\n";
    return 2;
  }
  std::vector<int> worker_counts = ParseWorkerList(workers_spec, &error);
  if (worker_counts.empty()) {
    std::cerr << error << "\n";
    return 2;
  }

  bench::BenchReport report("serving");
  report.set_seed(common.seed);
  report.set_schema(schema_name);
  auto kind = common.profile == "disk" ? bench::EngineKind::kDiskBased
                                       : bench::EngineKind::kInMemory;
  report.set_engine_profile(bench::EngineName(kind));
  report.Note("mode", mode);
  report.Note("hotswap", hotswap ? "yes" : "no");
  report.Note("hardware_threads",
              std::to_string(std::thread::hardware_concurrency()));

  // --- Train once, snapshot, publish (Fig 1: train, then serve) ----------
  bench::Testbed tb = bench::MakeTestbed(
      schema_name, kind, bench::DefaultFraction(schema_name), common.seed);
  const int num_queries = tb.workload->num_queries();

  advisor::AdvisorConfig config;
  config.offline_episodes = bench::Scaled(episodes);
  config.dqn.tmax = 16;
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.seed = common.seed;
  std::cerr << "training advisor (" << config.offline_episodes
            << " episodes, " << common.threads << " thread(s))...\n";
  auto advisor = std::make_unique<advisor::PartitioningAdvisor>(
      tb.schema.get(), *tb.workload, config);
  EvalContext ctx(common.threads, common.seed);
  advisor->TrainOffline(tb.exact_model.get(), nullptr, &ctx);

  std::stringstream snapshot;
  if (Status st = advisor::SaveAgentSnapshot(*advisor->agent(), snapshot);
      !st.ok()) {
    std::cerr << "snapshot error: " << st.ToString() << "\n";
    return 1;
  }
  const std::string snapshot_bytes = snapshot.str();

  serving::InferenceBatcher::Config batch;
  batch.max_batch = max_batch;
  batch.window_seconds = batch_window;
  serving::ModelRegistry registry;
  registry.Publish(std::make_shared<serving::ServingModel>(
      std::move(advisor), tb.exact_model.get(), batch));

  // --- Sweep worker-thread counts ----------------------------------------
  TablePrinter table({"workers", "submitted", "completed", "rejected", "shed",
                      "p50", "p95", "p99", "mean", "throughput", "versions"});
  bool counters_ok = true;
  for (int workers : worker_counts) {
    serving::ServerConfig server_config;
    server_config.worker_threads = workers;
    server_config.queue_capacity = static_cast<size_t>(queue_capacity);
    server_config.batch = batch;
    server_config.default_deadline_seconds = deadline;
    serving::AdvisorServer server(&registry, server_config);
    if (Status st = server.Start(); !st.ok()) {
      std::cerr << "server start failed: " << st.ToString() << "\n";
      return 1;
    }

    serving::LoadgenOptions options;
    options.open_loop = mode == "open";
    options.clients = clients;
    options.qps = qps;
    options.duration_seconds = duration;
    options.seed = HashCombine(common.seed, static_cast<uint64_t>(workers));
    options.num_queries = num_queries;

    std::function<void()> at_halftime;
    if (hotswap) {
      at_halftime = [&] {
        std::istringstream snap(snapshot_bytes);
        auto model = serving::ServingModel::FromSnapshot(
            tb.schema.get(), *tb.workload, config, tb.exact_model.get(), snap,
            batch);
        if (!model.ok()) {
          std::cerr << "hot-swap load failed: " << model.status().ToString()
                    << "\n";
          return;
        }
        uint64_t version = registry.Publish(*model);
        std::cerr << "  hot-swapped to model v" << version << "\n";
      };
    }

    std::cerr << "loadgen: " << workers << " worker(s), " << mode
              << "-loop, " << duration << "s...\n";
    serving::LoadgenReport run =
        serving::RunLoadgen(&server, options, at_halftime);
    server.Stop();

    std::string versions;
    for (const auto& [version, count] : run.completed_per_version) {
      if (!versions.empty()) versions += " ";
      versions += "v" + std::to_string(version) + ":" + std::to_string(count);
    }
    table.AddRow({std::to_string(workers), std::to_string(run.submitted),
                  std::to_string(run.completed), std::to_string(run.rejected),
                  std::to_string(run.shed), Ms(run.latency_p50),
                  Ms(run.latency_p95), Ms(run.latency_p99),
                  Ms(run.latency_mean),
                  FormatDouble(run.throughput_qps, 1) + "/s",
                  versions.empty() ? "-" : versions});

    auto stats = server.stats();
    bool run_ok =
        run.CountersConsistent() && run.failed == 0 &&
        stats.submitted == stats.completed + stats.rejected + stats.shed +
                               stats.failed &&
        (!hotswap || run.completed_per_version.size() >= 1);
    if (!run_ok) {
      std::cerr << "COUNTER VIOLATION at " << workers << " worker(s): "
                << "submitted=" << run.submitted << " completed="
                << run.completed << " rejected=" << run.rejected << " shed="
                << run.shed << " failed=" << run.failed << "\n";
      counters_ok = false;
    }
  }

  report.Table("serving load sweep (latency = submit-to-response)", table);
  if (common.metrics) {
    std::cout << "\n" << telemetry::MetricsRegistry::Global().ToTable();
  }
  report.Write();

  if (!counters_ok) {
    std::cerr << "FAILED: correctness counters violated\n";
    return 1;
  }
  std::cout << "OK: every request accounted for (completed + rejected + "
               "shed, zero dropped)\n";
  return 0;
}
