// Load generator for the serving subsystem: trains a small advisor, wraps
// it as a servable model, and replays workload-frequency traffic against an
// serving::AdvisorServer at one or more worker-thread counts, reporting
// p50/p95/p99 latency, throughput, and rejected/shed counts per sweep point
// (table + BENCH_serving.json via bench::BenchReport).
//
//   $ ./build/tools/lpa_loadgen --workers 1,2,8 --duration 5 --hotswap
//   $ ./build/tools/lpa_loadgen --mode open --qps 200 --deadline 0.05
//
// --tenants N (> 0) switches to multi-tenant fleet mode: N tenants with
// Zipf-distributed popularity are sharded across --shards AdvisorServer
// instances behind a fleet::FleetRouter, sharing --model-pool base models
// (tenant i serves pool model i mod K, so cross-tenant batching engages).
// --quota-rate/--quota-burst meter every tenant's admission with a token
// bucket; --hotswap republishes the hottest tenants' models at halftime.
// Per-tenant p50/p95/p99 and fairness counters go to BENCH_serving.json;
// stdout shows the aggregate sweep plus the hottest tenants.
//
//   $ ./build/tools/lpa_loadgen --schema micro --tenants 100 --shards 4 \
//       --quota-rate 200 --quota-burst 50 --hotswap
//
// --hotswap publishes a snapshot-restored model version halfway through
// each run; completed requests are then accounted per model version and the
// tool verifies none were dropped during the swap. The tool exits non-zero
// if any correctness counter is violated (submitted != completed + rejected
// + shed + failed, a non-OK unexpected status, per-version counts that do
// not sum to the completed total, or a token-bucket quota violation) —
// throughput is hardware-dependent and never asserted, so the check is
// meaningful on 1-CPU hosts too.
//
// --autopilot (single-tenant mode only; supersedes --hotswap) hands the
// registry to the closed-loop autopilot instead: a control thread ticks the
// scripted --drift-scenario while the load generator hammers the server, so
// every hot swap is detector-driven — trained, validated, and published
// live under traffic. The per-version completion counts then show requests
// migrating across autopilot-published versions with zero drops; a stable
// scenario that swaps fails the run (false positive).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor_handle.h"
#include "advisor/serialization.h"
#include "autopilot/autopilot.h"
#include "autopilot/scenario_driver.h"
#include "autopilot/scenarios.h"
#include "bench/bench_common.h"
#include "fleet/fleet_loadgen.h"
#include "fleet/router.h"
#include "fleet/tenant_directory.h"
#include "serving/loadgen.h"
#include "serving/model_registry.h"
#include "serving/server.h"
#include "util/cli.h"

namespace {

std::vector<int> ParseWorkerList(const std::string& spec, std::string* error) {
  std::vector<int> workers;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      int w = std::stoi(item);
      if (w < 1) throw std::invalid_argument("non-positive");
      workers.push_back(w);
    } catch (const std::exception&) {
      *error = "--workers expects a comma-separated list of positive "
               "integers, got '" + spec + "'";
      return {};
    }
  }
  if (workers.empty()) *error = "--workers list is empty";
  return workers;
}

std::string Ms(double seconds) {
  return lpa::FormatDouble(seconds * 1e3, 3) + "ms";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpa;

  cli::CommonOptions common;
  std::string schema_name = "ssb";
  std::string workers_spec = "1,2,8";
  std::string mode = "closed";
  int episodes = 40;
  int clients = 4;
  int max_batch = 8;
  int queue_capacity = 256;
  double qps = 100.0;
  double duration = 5.0;
  double batch_window = 200e-6;
  double batch_wait_us = 0.0;
  std::string quantize_mode = "off";
  double deadline = 0.0;
  bool hotswap = false;
  int tenants = 0;
  double zipf = 1.2;
  int shards = 4;
  int model_pool = 1;
  double quota_rate = 0.0;
  double quota_burst = 0.0;

  autopilot::AutopilotOptions autopilot_options;

  cli::FlagParser parser;
  common.Register(&parser);
  autopilot_options.Register(&parser);
  parser.AddString("schema", "ssb|tpcds|tpcch|micro", &schema_name);
  parser.AddInt("episodes", "offline training episodes", &episodes);
  parser.AddString("workers", "comma list of worker-thread counts",
                   &workers_spec);
  parser.AddString("mode", "closed|open", &mode);
  parser.AddInt("clients", "closed-loop concurrent clients", &clients);
  parser.AddDouble("qps", "open-loop target arrival rate", &qps);
  parser.AddDouble("duration", "seconds per sweep point", &duration);
  parser.AddDouble("batch-window", "batching window seconds", &batch_window);
  parser.AddDouble("batch_wait_us",
                   "bounded micro-batch wait window in microseconds: leaders "
                   "hold a batch for the full window even with no visible "
                   "peer (open-loop arrivals); 0 keeps closed-loop joins only",
                   &batch_wait_us);
  parser.AddString("quantize",
                   "off|int8|int16: quantized inference fast path (gated on "
                   "100% calibration action agreement)",
                   &quantize_mode);
  parser.AddInt("max-batch", "max coalesced rows per matrix pass", &max_batch);
  parser.AddInt("queue-capacity", "bounded request queue size",
                &queue_capacity);
  parser.AddDouble("deadline", "per-request deadline seconds (0 = none)",
                   &deadline);
  parser.AddBool("hotswap", "publish a new model version at halftime",
                 &hotswap);
  parser.AddInt("tenants", "multi-tenant fleet mode: tenant count (0 = off)",
                &tenants);
  parser.AddDouble("zipf", "tenant-popularity Zipf exponent", &zipf);
  parser.AddInt("shards", "fleet mode: AdvisorServer shard count", &shards);
  parser.AddInt("model-pool", "fleet mode: distinct shared base models",
                &model_pool);
  parser.AddDouble("quota-rate", "fleet mode: per-tenant tokens per second",
                   &quota_rate);
  parser.AddDouble("quota-burst",
                   "fleet mode: per-tenant burst (0 = unlimited)",
                   &quota_burst);
  parser.ParseOrExit(argc, argv);
  std::string error;
  if (!common.Validate(&error) || !autopilot_options.Validate(&error)) {
    std::cerr << error << "\n" << parser.Usage(argv[0]);
    return 2;
  }
  if (mode != "closed" && mode != "open") {
    std::cerr << "--mode must be closed or open\n";
    return 2;
  }
  if (quantize_mode != "off" && quantize_mode != "int8" &&
      quantize_mode != "int16") {
    std::cerr << "--quantize must be off, int8, or int16\n";
    return 2;
  }
  if (tenants > 0 && (shards < 1 || model_pool < 1)) {
    std::cerr << "--shards and --model-pool must be >= 1\n";
    return 2;
  }
  if (autopilot_options.autopilot && tenants > 0) {
    std::cerr << "--autopilot runs single-tenant (drop --tenants)\n";
    return 2;
  }
  if (autopilot_options.autopilot && hotswap) {
    std::cerr << "--autopilot supersedes --hotswap: the autopilot decides "
                 "when to publish\n";
    return 2;
  }
  std::vector<int> worker_counts = ParseWorkerList(workers_spec, &error);
  if (worker_counts.empty()) {
    std::cerr << error << "\n";
    return 2;
  }

  bench::BenchReport report("serving");
  report.set_seed(common.seed);
  report.set_schema(schema_name);
  auto kind = common.profile == "disk" ? bench::EngineKind::kDiskBased
                                       : bench::EngineKind::kInMemory;
  report.set_engine_profile(bench::EngineName(kind));
  report.Note("mode", tenants > 0 ? "fleet" : mode);
  report.Note("hotswap", hotswap ? "yes" : "no");
  report.Note("batch_wait_us", FormatDouble(batch_wait_us, 1));
  report.Note("quantize", quantize_mode);
  report.Note("hardware_threads",
              std::to_string(std::thread::hardware_concurrency()));
  if (tenants > 0) {
    report.Note("tenants", std::to_string(tenants));
    report.Note("shards", std::to_string(shards));
    report.Note("model_pool", std::to_string(model_pool));
    report.Note("zipf_theta", FormatDouble(zipf, 2));
    report.Note("quota_rate", FormatDouble(quota_rate, 1));
    report.Note("quota_burst", FormatDouble(quota_burst, 1));
  }
  // Worker-count sweeps on few-core hosts cannot show throughput scaling;
  // the sweep is kept for its correctness counters (zero drops, quota
  // enforcement, per-version accounting), which hold at any core count.
  report.Note("scaling_waiver",
              "throughput scaling not asserted: " +
                  std::to_string(std::thread::hardware_concurrency()) +
                  " hardware thread(s); correctness counters asserted "
                  "instead");

  // --- Train once, snapshot, publish (Fig 1: train, then serve) ----------
  bench::Testbed tb = bench::MakeTestbed(
      schema_name, kind, bench::DefaultFraction(schema_name), common.seed);
  const int num_queries = tb.workload->num_queries();

  advisor::AdvisorConfig config;
  config.offline_episodes = bench::Scaled(episodes);
  config.dqn.tmax = 16;
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.seed = common.seed;
  std::cerr << "training advisor (" << config.offline_episodes
            << " episodes, " << common.threads << " thread(s))...\n";
  auto advisor = std::make_unique<advisor::PartitioningAdvisor>(
      tb.schema.get(), *tb.workload, config);
  EvalContext ctx(common.threads, common.seed);
  advisor->TrainOffline(tb.exact_model.get(), nullptr, &ctx);

  std::stringstream snapshot;
  if (Status st = advisor::SaveAgentSnapshot(*advisor->agent(), snapshot);
      !st.ok()) {
    std::cerr << "snapshot error: " << st.ToString() << "\n";
    return 1;
  }
  const std::string snapshot_bytes = snapshot.str();

  serving::InferenceBatcher::Config batch;
  batch.max_batch = max_batch;
  batch.window_seconds = batch_window;
  if (batch_wait_us > 0.0) {
    // Open-loop arrivals are invisible to the active-rollout count until
    // they land; a bounded wait window lets leaders collect them.
    batch.window_seconds = batch_wait_us * 1e-6;
    batch.wait_for_window = true;
  }

  serving::QuantizeSpec qspec;
  qspec.enabled = quantize_mode != "off";
  qspec.precision = quantize_mode == "int16" ? nn::QuantPrecision::kInt16
                                             : nn::QuantPrecision::kInt8;

  // --- Multi-tenant fleet sweep -------------------------------------------
  if (tenants > 0) {
    auto load_model = [&]() -> std::shared_ptr<serving::ServingModel> {
      std::istringstream snap(snapshot_bytes);
      auto model = serving::ServingModel::FromSnapshot(
          tb.schema.get(), *tb.workload, config, tb.exact_model.get(), snap,
          batch, qspec);
      if (!model.ok()) {
        std::cerr << "model load failed: " << model.status().ToString()
                  << "\n";
        return nullptr;
      }
      return *model;
    };

    // K distinct base models; tenant i serves pool model i mod K, so each
    // pool group shares one ServingModel instance and its batcher —
    // cross-tenant batching at fleet scale.
    std::vector<std::shared_ptr<serving::ServingModel>> pool;
    for (int k = 0; k < model_pool; ++k) {
      auto model = load_model();
      if (model == nullptr) return 1;
      pool.push_back(std::move(model));
    }
    if (qspec.enabled) {
      report.Note("fleet_quantized", pool[0]->quantized() ? "active"
                                                          : "rejected");
      report.Note("fleet_quant_agreement",
                  FormatDouble(pool[0]->calibration_agreement(), 4));
    }

    TablePrinter table({"workers", "submitted", "quota_rej", "completed",
                        "rejected", "shed", "p50", "p95", "p99", "throughput",
                        "versions"});
    bool counters_ok = true;
    for (int workers : worker_counts) {
      fleet::TenantDirectory directory;
      std::vector<std::vector<std::string>> groups(pool.size());
      for (int t = 0; t < tenants; ++t) {
        groups[static_cast<size_t>(t) % pool.size()].push_back(
            fleet::TenantName(t));
      }
      for (size_t k = 0; k < pool.size(); ++k) {
        if (qspec.enabled) {
          // Exercise the snapshot-to-fleet path: build + gate + publish the
          // shared quantized servable in one directory call.
          std::istringstream snap(snapshot_bytes);
          auto shared = directory.PublishSharedSnapshot(
              groups[k], tb.schema.get(), *tb.workload, config,
              tb.exact_model.get(), snap, batch, qspec);
          if (!shared.ok()) {
            std::cerr << "fleet quantized publish failed: "
                      << shared.status().ToString() << "\n";
            return 1;
          }
        } else {
          directory.PublishShared(groups[k], pool[k]);
        }
      }

      fleet::FleetConfig fleet_config;
      fleet_config.shards = shards;
      fleet_config.vnodes_per_shard = 64;
      fleet_config.server.worker_threads = workers;
      fleet_config.server.queue_capacity =
          static_cast<size_t>(queue_capacity);
      fleet_config.server.batch = batch;
      fleet_config.server.default_deadline_seconds = deadline;
      fleet_config.default_quota = {quota_rate, quota_burst};
      fleet::FleetRouter router(&directory, fleet_config);
      if (Status st = router.Start(); !st.ok()) {
        std::cerr << "fleet start failed: " << st.ToString() << "\n";
        return 1;
      }

      fleet::FleetLoadgenOptions options;
      options.tenants = tenants;
      options.zipf_theta = zipf;
      options.clients = clients;
      options.duration_seconds = duration;
      options.seed = HashCombine(common.seed, static_cast<uint64_t>(workers));
      options.num_queries = num_queries;

      std::function<void()> at_halftime;
      if (hotswap) {
        at_halftime = [&] {
          // Republish the hottest tenants only: tenant-scoped hot swaps
          // under the heaviest traffic, while the long tail keeps serving
          // its original version.
          int n = std::min(5, tenants);
          for (int t = 0; t < n; ++t) {
            auto model = load_model();
            if (model == nullptr) return;
            directory.Find(fleet::TenantName(t))->Publish(std::move(model));
          }
          std::cerr << "  hot-swapped the " << n << " hottest tenant(s)\n";
        };
      }

      std::cerr << "fleet loadgen: " << tenants << " tenant(s), " << shards
                << " shard(s), " << workers << " worker(s)/shard, "
                << duration << "s...\n";
      fleet::FleetLoadgenReport run =
          fleet::RunFleetLoadgen(&router, options, at_halftime);
      router.Stop();

      std::string versions;
      for (const auto& [version, count] : run.completed_per_version) {
        if (!versions.empty()) versions += " ";
        versions +=
            "v" + std::to_string(version) + ":" + std::to_string(count);
      }
      table.AddRow({std::to_string(workers), std::to_string(run.submitted),
                    std::to_string(run.quota_rejected),
                    std::to_string(run.completed),
                    std::to_string(run.rejected), std::to_string(run.shed),
                    Ms(run.latency_p50), Ms(run.latency_p95),
                    Ms(run.latency_p99),
                    FormatDouble(run.throughput_qps, 1) + "/s",
                    versions.empty() ? "-" : versions});

      // Full per-tenant fairness table into BENCH_serving.json; stdout only
      // shows the Zipf head below.
      TablePrinter per_tenant({"tenant", "submitted", "quota_rej",
                               "completed", "rejected", "shed", "failed",
                               "p50", "p95", "p99"});
      for (const fleet::TenantOutcome& t : run.per_tenant) {
        per_tenant.AddRow(
            {t.tenant, std::to_string(t.submitted),
             std::to_string(t.quota_rejected), std::to_string(t.completed),
             std::to_string(t.rejected), std::to_string(t.shed),
             std::to_string(t.failed), t.completed > 0 ? Ms(t.p50) : "-",
             t.completed > 0 ? Ms(t.p95) : "-",
             t.completed > 0 ? Ms(t.p99) : "-"});
      }
      report.Record("fleet per-tenant outcomes (workers=" +
                        std::to_string(workers) + ")",
                    per_tenant);

      std::cout << "\nhottest tenants (workers=" << workers << "):\n";
      TablePrinter head({"tenant", "submitted", "quota_rej", "completed",
                         "p50", "p99"});
      for (int t = 0; t < std::min(5, tenants); ++t) {
        const fleet::TenantOutcome& outcome =
            run.per_tenant[static_cast<size_t>(t)];
        head.AddRow({outcome.tenant, std::to_string(outcome.submitted),
                     std::to_string(outcome.quota_rejected),
                     std::to_string(outcome.completed),
                     outcome.completed > 0 ? Ms(outcome.p50) : "-",
                     outcome.completed > 0 ? Ms(outcome.p99) : "-"});
      }
      head.Print();

      fleet::TenantStats totals = router.totals();
      bool run_ok = run.CountersConsistent() && run.failed == 0 &&
                    run.quota_violations == 0 && totals.Settled() &&
                    totals.submitted == run.submitted;
      if (!run_ok) {
        std::cerr << "COUNTER VIOLATION at " << workers << " worker(s): "
                  << "submitted=" << run.submitted
                  << " quota_rejected=" << run.quota_rejected
                  << " completed=" << run.completed
                  << " rejected=" << run.rejected << " shed=" << run.shed
                  << " failed=" << run.failed
                  << " quota_violations=" << run.quota_violations << "\n";
        counters_ok = false;
      }
    }

    report.Table("fleet load sweep (latency = submit-to-response)", table);
    if (common.metrics) {
      std::cout << "\n" << telemetry::MetricsRegistry::Global().ToTable();
    }
    report.Write();

    if (!counters_ok) {
      std::cerr << "FAILED: fleet correctness counters violated\n";
      return 1;
    }
    std::cout << "OK: every request accounted for across " << tenants
              << " tenant(s), zero quota violations, zero dropped\n";
    return 0;
  }

  // --- Single-tenant sweep ------------------------------------------------
  // With --autopilot the registry belongs to the closed loop: the trained
  // advisor becomes the incumbent (the AdvisorHandle migration-path
  // constructor), Start publishes v1, and every later version is a
  // detector-driven swap published while the loadgen below is running.
  serving::ModelRegistry registry;
  std::unique_ptr<autopilot::Autopilot> pilot;
  std::unique_ptr<autopilot::ScenarioDriver> driver;
  autopilot::ScenarioKind scenario_kind = autopilot::ScenarioKind::kStable;
  if (autopilot_options.autopilot) {
    scenario_kind = *autopilot_options.Kind();  // validated above
    autopilot::AutopilotConfig loop;
    loop.retrain.async = true;  // Tick stays cheap; training off-thread
    loop.retrain.batch = batch;
    loop.retrain.seed = common.seed + 17;
    autopilot::ApplyScenarioOverrides(scenario_kind, &loop);
    pilot = std::make_unique<autopilot::Autopilot>(
        AdvisorHandle(std::move(advisor)), tb.exact_model.get(), loop);
    pilot->AddTarget(&registry);
    if (Status st = pilot->Start(std::vector<double>(
            static_cast<size_t>(num_queries), 1.0));
        !st.ok()) {
      std::cerr << "autopilot start failed: " << st.ToString() << "\n";
      return 1;
    }
    driver = std::make_unique<autopilot::ScenarioDriver>(
        pilot.get(), scenario_kind, common.seed + 23);
    report.Note("autopilot", autopilot::ScenarioName(scenario_kind));
  } else {
    registry.Publish(std::make_shared<serving::ServingModel>(
        std::move(advisor), tb.exact_model.get(), batch));
  }

  // --- Sweep worker-thread counts ----------------------------------------
  // One sweep = every worker count against one registry; reused below for
  // the quantized fast-path comparison run (no hotswap / autopilot there).
  bool counters_ok = true;
  auto run_sweep = [&](serving::ModelRegistry* reg, TablePrinter* tbl,
                       std::map<int, double>* p50_by_workers,
                       bool allow_hotswap, bool with_autopilot) {
    for (int workers : worker_counts) {
      serving::ServerConfig server_config;
      server_config.worker_threads = workers;
      server_config.queue_capacity = static_cast<size_t>(queue_capacity);
      server_config.batch = batch;
      server_config.default_deadline_seconds = deadline;
      serving::AdvisorServer server(reg, server_config);
      if (Status st = server.Start(); !st.ok()) {
        std::cerr << "server start failed: " << st.ToString() << "\n";
        counters_ok = false;
        return;
      }

      serving::LoadgenOptions options;
      options.open_loop = mode == "open";
      options.clients = clients;
      options.qps = qps;
      options.duration_seconds = duration;
      options.seed = HashCombine(common.seed, static_cast<uint64_t>(workers));
      options.num_queries = num_queries;

      std::function<void()> at_halftime;
      if (allow_hotswap && hotswap) {
        at_halftime = [&] {
          std::istringstream snap(snapshot_bytes);
          auto model = serving::ServingModel::FromSnapshot(
              tb.schema.get(), *tb.workload, config, tb.exact_model.get(),
              snap, batch);
          if (!model.ok()) {
            std::cerr << "hot-swap load failed: " << model.status().ToString()
                      << "\n";
            return;
          }
          uint64_t version = reg->Publish(*model);
          std::cerr << "  hot-swapped to model v" << version << "\n";
        };
      }

      std::cerr << "loadgen: " << workers << " worker(s), " << mode
                << "-loop, " << duration << "s...\n";

      // The autopilot control plane ticks on its own thread while the
      // loadgen saturates the server — the swaps land mid-traffic, which is
      // the point.
      std::atomic<bool> control_stop{false};
      std::thread control;
      if (with_autopilot && pilot != nullptr) {
        control = std::thread([&] {
          while (!control_stop.load(std::memory_order_acquire)) {
            auto outcome = driver->Step(&std::cerr);
            if (!outcome.ok()) {
              std::cerr << "autopilot tick failed: "
                        << outcome.status().ToString() << "\n";
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
          }
        });
      }
      serving::LoadgenReport run =
          serving::RunLoadgen(&server, options, at_halftime);
      if (control.joinable()) {
        control_stop.store(true, std::memory_order_release);
        control.join();
      }
      server.Stop();

      std::string versions;
      for (const auto& [version, count] : run.completed_per_version) {
        if (!versions.empty()) versions += " ";
        versions +=
            "v" + std::to_string(version) + ":" + std::to_string(count);
      }
      tbl->AddRow({std::to_string(workers), std::to_string(run.submitted),
                   std::to_string(run.completed),
                   std::to_string(run.rejected), std::to_string(run.shed),
                   Ms(run.latency_p50), Ms(run.latency_p95),
                   Ms(run.latency_p99), Ms(run.latency_mean),
                   FormatDouble(run.throughput_qps, 1) + "/s",
                   versions.empty() ? "-" : versions});
      if (p50_by_workers != nullptr) {
        (*p50_by_workers)[workers] = run.latency_p50;
      }

      auto stats = server.stats();
      bool run_ok =
          run.CountersConsistent() && run.failed == 0 &&
          stats.submitted == stats.completed + stats.rejected + stats.shed +
                                 stats.failed &&
          (!(allow_hotswap && hotswap) ||
           run.completed_per_version.size() >= 1);
      if (!run_ok) {
        std::cerr << "COUNTER VIOLATION at " << workers << " worker(s): "
                  << "submitted=" << run.submitted << " completed="
                  << run.completed << " rejected=" << run.rejected
                  << " shed=" << run.shed << " failed=" << run.failed << "\n";
        counters_ok = false;
      }
    }
  };

  TablePrinter table({"workers", "submitted", "completed", "rejected", "shed",
                      "p50", "p95", "p99", "mean", "throughput", "versions"});
  std::map<int, double> fp64_p50;
  run_sweep(&registry, &table, &fp64_p50, /*allow_hotswap=*/true,
            /*with_autopilot=*/true);
  report.Table("serving load sweep (latency = submit-to-response)", table);

  // --- Quantized fast-path comparison ------------------------------------
  // Same snapshot, same traffic and seeds, int8/int16 inference: the p50
  // delta against the fp64 sweep above is the fast path's win (recorded per
  // worker count in the manifest), alongside the calibration gate's verdict.
  if (qspec.enabled && pilot == nullptr) {
    std::istringstream snap(snapshot_bytes);
    auto qmodel = serving::ServingModel::FromSnapshot(
        tb.schema.get(), *tb.workload, config, tb.exact_model.get(), snap,
        batch, qspec);
    if (!qmodel.ok()) {
      std::cerr << "quantized model load failed: "
                << qmodel.status().ToString() << "\n";
      return 1;
    }
    report.Note("quant_state", (*qmodel)->quantized() ? "active" : "rejected");
    report.Note("quant_calibration_agreement",
                FormatDouble((*qmodel)->calibration_agreement(), 4));
    serving::ModelRegistry quant_registry;
    quant_registry.Publish(*qmodel);
    TablePrinter quant_table({"workers", "submitted", "completed", "rejected",
                              "shed", "p50", "p95", "p99", "mean",
                              "throughput", "versions"});
    std::map<int, double> quant_p50;
    run_sweep(&quant_registry, &quant_table, &quant_p50,
              /*allow_hotswap=*/false, /*with_autopilot=*/false);
    report.Table("quantized (" + quantize_mode +
                     ") serving load sweep (latency = submit-to-response)",
                 quant_table);
    for (int workers : worker_counts) {
      report.Note("p50_fp64_w" + std::to_string(workers),
                  Ms(fp64_p50[workers]));
      report.Note("p50_" + quantize_mode + "_w" + std::to_string(workers),
                  Ms(quant_p50[workers]));
    }
  }
  if (pilot != nullptr) {
    const auto& c = pilot->counters();
    std::cout << "autopilot (" << autopilot::ScenarioName(scenario_kind)
              << "): " << driver->ticks() << " tick(s), "
              << driver->drift_events() << " drift event(s), " << c.retrains
              << " retrain(s), " << c.swaps << " swap(s), " << c.rollbacks
              << " rollback(s); registry at v" << registry.current_version()
              << "\n";
    report.Note("autopilot_ticks", std::to_string(driver->ticks()));
    report.Note("autopilot_swaps", std::to_string(c.swaps));
    report.Note("autopilot_rollbacks", std::to_string(c.rollbacks));
    // Timing-independent correctness: a stable workload must never swap.
    if (scenario_kind == autopilot::ScenarioKind::kStable && c.swaps > 0) {
      std::cerr << "COUNTER VIOLATION: " << c.swaps
                << " swap(s) on a stable workload (false positive)\n";
      counters_ok = false;
    }
  }
  if (common.metrics) {
    std::cout << "\n" << telemetry::MetricsRegistry::Global().ToTable();
  }
  report.Write();

  if (!counters_ok) {
    std::cerr << "FAILED: correctness counters violated\n";
    return 1;
  }
  std::cout << "OK: every request accounted for (completed + rejected + "
               "shed, zero dropped)\n";
  return 0;
}
