#!/usr/bin/env bash
# Sanitizer gate: configure a dedicated build tree with AddressSanitizer +
# UndefinedBehaviorSanitizer, build everything, and run the test suite.
#
#   $ tools/check.sh                 # ASan+UBSan (default)
#   $ LPA_SANITIZE=undefined tools/check.sh
#   $ BUILD_DIR=build-asan tools/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${LPA_SANITIZE:-address,undefined}"
BUILD_DIR="${BUILD_DIR:-build-sanitize}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (${BUILD_DIR}, -fsanitize=${SANITIZE}) =="
cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE="${SANITIZE}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== test =="
# halt_on_error makes ASan failures fail the test run instead of just logging.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== OK: build and tests are clean under ${SANITIZE} =="
