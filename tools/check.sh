#!/usr/bin/env bash
# Sanitizer gate: configure a dedicated build tree with the requested
# sanitizers, build everything, and run the test suite.
#
#   $ tools/check.sh                 # ASan+UBSan (default)
#   $ tools/check.sh tsan            # ThreadSanitizer on the threaded tests
#   $ LPA_SANITIZE=undefined tools/check.sh
#   $ BUILD_DIR=build-asan tools/check.sh
#   $ CTEST_FILTER=advisor tools/check.sh tsan
#
# The tsan preset builds with -DLPA_SANITIZE=thread into build-tsan and, by
# default, runs only the tests that exercise the parallel evaluation engine
# (TSan slows everything ~10x; the serial tests gain nothing from it).
set -euo pipefail

cd "$(dirname "$0")/.."

PRESET="${1:-}"
if [[ "${PRESET}" == "tsan" ]]; then
  SANITIZE="${LPA_SANITIZE:-thread}"
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  CTEST_FILTER="${CTEST_FILTER:-parallel_eval_test}"
else
  SANITIZE="${LPA_SANITIZE:-address,undefined}"
  BUILD_DIR="${BUILD_DIR:-build-sanitize}"
  CTEST_FILTER="${CTEST_FILTER:-}"
fi
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (${BUILD_DIR}, -fsanitize=${SANITIZE}) =="
cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE="${SANITIZE}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== test =="
CTEST_ARGS=(--test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}")
if [[ -n "${CTEST_FILTER}" ]]; then
  CTEST_ARGS+=(-R "${CTEST_FILTER}")
fi
# halt_on_error makes sanitizer failures fail the test run, not just log.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest "${CTEST_ARGS[@]}"

echo "== OK: build and tests are clean under ${SANITIZE} =="
