#!/usr/bin/env bash
# Sanitizer gate: configure a dedicated build tree with the requested
# sanitizers, build everything, and run the test suite.
#
#   $ tools/check.sh                 # ASan+UBSan (default)
#   $ tools/check.sh tsan            # ThreadSanitizer on the threaded tests
#   $ tools/check.sh perf            # Release micro-bench: incremental costing
#   $ tools/check.sh serve           # TSan serving tests + loadgen smoke
#   $ tools/check.sh fleet           # TSan fleet tests + 100-tenant smoke
#   $ tools/check.sh autopilot       # TSan autopilot tests + bench smoke
#   $ tools/check.sh storage         # ASan+UBSan storage/engine + compression smoke
#   $ tools/check.sh train           # TSan actor/learner tests + training kernel
#   $ tools/check.sh search          # ASan+UBSan search/pruning tests + DP bench smoke
#   $ LPA_SANITIZE=undefined tools/check.sh
#   $ BUILD_DIR=build-asan tools/check.sh
#   $ CTEST_FILTER=advisor tools/check.sh tsan
#
# The tsan preset builds with -DLPA_SANITIZE=thread into build-tsan and, by
# default, runs only the tests that exercise the parallel evaluation engine
# and the serving subsystem (TSan slows everything ~10x; the serial tests
# gain nothing from it).
#
# The serve preset builds serving_test and lpa_loadgen under TSan, runs the
# serving tests, then drives a ~5-second loadgen smoke (1/2/8 workers with a
# halftime hot swap). The loadgen asserts its correctness counters — every
# request completed, rejected, or shed; zero dropped — and exits non-zero on
# violation; BENCH_serving.json lands in $LPA_METRICS_DIR (or build-tsan).
#
# The fleet preset builds the multi-tenant fleet tests and lpa_loadgen under
# TSan, runs the fleet + serving tests, then drives a 100-tenant loadgen
# smoke (Zipf tenant popularity, 4 shards, per-tenant quotas, halftime hot
# swap of the hottest tenants). The loadgen exits non-zero on any dropped
# request, counter inconsistency, or token-bucket quota violation. Note on
# few-core hosts the worker sweep cannot show throughput scaling — the smoke
# asserts the correctness counters instead (waiver recorded in
# BENCH_serving.json metadata as scaling_waiver).
#
# The autopilot preset builds autopilot_test + serving_test + bench_autopilot
# under TSan (the closed loop hot-swaps models while servers serve, and the
# async retrain trains on a background thread — exactly the interleavings
# TSan exists for), runs both test suites, then drives the bench_autopilot
# scenario sweep at LPA_BENCH_SCALE=4. The bench enforces its own acceptance
# gates (zero false swaps on stable, detection + recovery on every drift
# event, >= 1 automatic rollback in the forced-regression drill) and exits
# non-zero on violation; BENCH_autopilot.json lands in $LPA_METRICS_DIR (or
# build-tsan). Same few-core waiver as the fleet preset: correctness
# counters and recovery ratios are asserted, never wall-clock throughput.
#
# The storage preset builds the compressed-storage surface under ASan+UBSan
# and runs storage_test + engine_exec_test — together they are the
# compression smoke: every encoding round-trips property-tested inputs, the
# testbeds compress >= 2x, and EncodedExecTest compares the encoded engine
# against an uncompressed cluster with exact equality on every QueryRunStats
# field at 1/2/8 threads (plus the encoded-pricing and BulkAppend re-seal
# paths). Bit-packing is exactly the kind of code UBSan exists for.
#
# The train preset builds the actor/learner pipeline tests (actor_learner_test
# runs the deterministic digest checks at 1, 2, and 8 actor threads plus the
# SPSC shard and fast-mode interleavings TSan exists for), rl_test, and
# quantized_test under TSan, runs them, then drives the training kernel of
# bench_micro_components, which re-asserts bit-identical reward and weight
# digests at 1/2/8 threads and writes BENCH_training.json to $LPA_METRICS_DIR
# (or build-tsan). Standing waiver: on few-core hosts (this container pins 1
# CPU) the >= 3x steps/sec speedup at 8 threads cannot manifest, so the
# preset asserts digest equality instead and the bench records the waiver in
# BENCH_training.json metadata as scaling_waiver.
#
# The search preset builds the design-search subsystem (src/search/) under
# ASan+UBSan and runs search_test (DP (1+ε) certificate vs exhaustive
# enumeration, admissible floors, pruned-Suggest bit-identity at 1/2/8
# threads) plus parallel_eval_test, then drives the bench_exp1_offline
# verification sections (--baseline dp): the micro exhaustive gate and the
# pruned-vs-unpruned Suggest counter checks, exiting non-zero on violation.
# Same 1-CPU waiver as the other presets: wall-clock columns are
# informational, the gates assert digests and counters only.
#
# The perf preset builds Release into build-perf and runs the post-benchmark
# kernels of bench_micro_components (google benchmarks filtered out): the
# workload-cost kernel (full recompute vs incremental delta costing) and the
# engine kernel (pool-parallel ExecuteWorkload at 1/2/8 threads with
# bit-identity digest checks). BENCH_micro_components.json and
# BENCH_engine.json land in $LPA_METRICS_DIR (or build-perf).
set -euo pipefail

cd "$(dirname "$0")/.."

PRESET="${1:-}"
if [[ "${PRESET}" == "perf" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-perf}"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  echo "== configure (${BUILD_DIR}, Release) =="
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  echo "== build bench_micro_components =="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_micro_components
  echo "== perf kernels: workload-cost (full vs incremental) + engine (pool-parallel) =="
  LPA_METRICS_DIR="${LPA_METRICS_DIR:-${BUILD_DIR}}" \
    "${BUILD_DIR}/bench/bench_micro_components" --benchmark_filter='^$'
  echo "== OK: matching digests above = bit-identical results; see BENCH_engine.json =="
  exit 0
fi
if [[ "${PRESET}" == "serve" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  echo "== configure (${BUILD_DIR}, -fsanitize=thread) =="
  cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "== build serving_test + lpa_loadgen =="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target serving_test lpa_loadgen
  echo "== serving tests (TSan) =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -R serving_test
  echo "== loadgen smoke: 1/2/8 workers, hot swap at halftime =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  LPA_METRICS_DIR="${LPA_METRICS_DIR:-${BUILD_DIR}}" \
  LPA_BENCH_SCALE="${LPA_BENCH_SCALE:-4}" \
    "${BUILD_DIR}/tools/lpa_loadgen" --schema micro --episodes 16 \
      --workers 1,2,8 --duration 1.5 --hotswap
  echo "== OK: serving tests TSan-clean, loadgen counters consistent =="
  exit 0
fi
if [[ "${PRESET}" == "fleet" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  echo "== configure (${BUILD_DIR}, -fsanitize=thread) =="
  cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "== build fleet_test + serving_test + lpa_loadgen =="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target fleet_test serving_test \
    lpa_loadgen
  echo "== fleet + serving tests (TSan) =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure \
      -R 'fleet_test|serving_test'
  echo "== fleet smoke: 100 tenants, 4 shards, quotas, halftime hot swap =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  LPA_METRICS_DIR="${LPA_METRICS_DIR:-${BUILD_DIR}}" \
  LPA_BENCH_SCALE="${LPA_BENCH_SCALE:-4}" \
    "${BUILD_DIR}/tools/lpa_loadgen" --schema micro --episodes 16 \
      --tenants 100 --shards 4 --workers 2 --clients 3 --duration 2 \
      --hotswap --quota-rate 200 --quota-burst 50
  echo "== OK: fleet TSan-clean; zero drops, zero quota violations =="
  exit 0
fi
if [[ "${PRESET}" == "autopilot" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  echo "== configure (${BUILD_DIR}, -fsanitize=thread) =="
  cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "== build autopilot_test + serving_test + bench_autopilot =="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target autopilot_test \
    serving_test bench_autopilot
  echo "== autopilot + serving tests (TSan) =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure \
      -R 'autopilot_test|serving_test'
  echo "== autopilot smoke: scenario sweep with acceptance gates =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  LPA_METRICS_DIR="${LPA_METRICS_DIR:-${BUILD_DIR}}" \
  LPA_BENCH_SCALE="${LPA_BENCH_SCALE:-4}" \
    "${BUILD_DIR}/bench/bench_autopilot" --schema micro
  echo "== OK: autopilot TSan-clean; zero false swaps, recovery + rollback verified =="
  exit 0
fi
if [[ "${PRESET}" == "storage" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-sanitize}"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  echo "== configure (${BUILD_DIR}, -fsanitize=address,undefined) =="
  cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "== build storage_test + engine_exec_test =="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target storage_test \
    engine_exec_test
  echo "== storage + engine tests (ASan+UBSan), incl. compression smoke =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure \
      -R 'storage_test|engine_exec_test'
  echo "== OK: encodings round-trip, >=2x compression, encoded engine bit-identical =="
  exit 0
fi
if [[ "${PRESET}" == "train" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  echo "== configure (${BUILD_DIR}, -fsanitize=thread) =="
  cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "== build actor_learner_test + rl_test + quantized_test + bench =="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target actor_learner_test \
    rl_test quantized_test bench_micro_components
  echo "== actor/learner + rl + quantized tests (TSan, 1/2/8 actor threads) =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure \
      -R 'actor_learner_test|rl_test|quantized_test'
  echo "== training kernel: digest equality at 1/2/8 threads + fast mode =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  LPA_METRICS_DIR="${LPA_METRICS_DIR:-${BUILD_DIR}}" \
  LPA_BENCH_SCALE="${LPA_BENCH_SCALE:-4}" \
    "${BUILD_DIR}/bench/bench_micro_components" --benchmark_filter='^$'
  echo "== OK: actor/learner TSan-clean, deterministic digests bit-identical =="
  echo "   (scaling_waiver: 1-CPU container; speedup asserted on multi-core hosts only)"
  exit 0
fi
if [[ "${PRESET}" == "search" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-sanitize}"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  echo "== configure (${BUILD_DIR}, -fsanitize=address,undefined) =="
  cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "== build search_test + parallel_eval_test + bench_exp1_offline =="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target search_test \
    parallel_eval_test bench_exp1_offline
  echo "== search + pruning tests (ASan+UBSan) =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure \
      -R 'search_test|parallel_eval_test'
  echo "== bench smoke: DP (1+eps) certificate + pruned-Suggest bit-identity =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  LPA_METRICS_DIR="${LPA_METRICS_DIR:-${BUILD_DIR}}" \
  LPA_BENCH_SCALE="${LPA_BENCH_SCALE:-4}" \
    "${BUILD_DIR}/bench/bench_exp1_offline" --baseline dp --epsilon 0.1
  echo "== OK: DP within (1+eps) of exhaustive, pruned Suggest bit-identical at 1/2/8 threads =="
  echo "   (scaling_waiver: 1-CPU container; wall-clock informational, digests asserted)"
  exit 0
fi
if [[ "${PRESET}" == "tsan" ]]; then
  SANITIZE="${LPA_SANITIZE:-thread}"
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  CTEST_FILTER="${CTEST_FILTER:-parallel_eval_test|serving_test|fleet_test}"
else
  SANITIZE="${LPA_SANITIZE:-address,undefined}"
  BUILD_DIR="${BUILD_DIR:-build-sanitize}"
  CTEST_FILTER="${CTEST_FILTER:-}"
fi
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (${BUILD_DIR}, -fsanitize=${SANITIZE}) =="
cmake -B "${BUILD_DIR}" -S . -DLPA_SANITIZE="${SANITIZE}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== test =="
CTEST_ARGS=(--test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}")
if [[ -n "${CTEST_FILTER}" ]]; then
  CTEST_ARGS+=(-R "${CTEST_FILTER}")
fi
# halt_on_error makes sanitizer failures fail the test run, not just log.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest "${CTEST_ARGS[@]}"

echo "== OK: build and tests are clean under ${SANITIZE} =="
