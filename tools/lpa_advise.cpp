// lpa_advise: command-line partitioning advisor.
//
// Reads a schema (CREATE TABLE dialect, see sql/ddl.h) and a SQL workload,
// trains the DRL advisor against the network-centric cost model, and prints
// the suggested physical design as ALTER TABLE statements.
//
//   $ lpa_advise --ddl schema.sql --workload workload.sql
//                [--profile disk|memory] [--nodes 6] [--episodes 400]
//                [--threads 1] [--mix 1,0.5,...] [--save agent.bin]
//                [--load agent.bin] [--seed 42] [--metrics]
//                [--metrics-json out.json]
//
// --engine is accepted as an alias of --profile. --threads > 1 runs the
// parallel evaluation engine; seeded results are identical at any count.
//
// With --load, training is skipped and the snapshot served directly.
// --metrics prints the telemetry table to stderr; --metrics-json
// additionally materializes a small cluster, measures the suggested design
// on it (so engine counters are populated), and writes metrics + manifest
// + the suggestion as JSON.

#include <fstream>
#include <iostream>
#include <sstream>

#include "advisor/advisor.h"
#include "advisor/serialization.h"
#include "engine/cluster.h"
#include "sql/ddl.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "telemetry/registry.h"
#include "util/cli.h"

namespace {

struct Options {
  std::string ddl_path;
  std::string workload_path;
  lpa::cli::CommonOptions common;
  int nodes = 6;
  int episodes = 400;
  std::string mix;
  std::string save_path;
  std::string load_path;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::vector<double> ParseMix(const std::string& mix, int m) {
  std::vector<double> freqs;
  std::stringstream ss(mix);
  std::string item;
  while (std::getline(ss, item, ',')) freqs.push_back(std::stod(item));
  freqs.resize(static_cast<size_t>(m), 0.0);
  return freqs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpa;

  Options options;
  cli::FlagParser parser;
  parser.AddString("ddl", "schema.sql", &options.ddl_path);
  parser.AddString("workload", "workload.sql", &options.workload_path);
  parser.AddInt("nodes", "cluster nodes", &options.nodes);
  parser.AddInt("episodes", "offline training episodes", &options.episodes);
  parser.AddString("mix", "f1,f2,...", &options.mix);
  parser.AddString("save", "agent snapshot out", &options.save_path);
  parser.AddString("load", "agent snapshot in", &options.load_path);
  options.common.Register(&parser);
  parser.AddAlias("engine", "profile");  // historical spelling
  std::string error;
  if (!parser.Parse(argc, argv, &error) || !options.common.Validate(&error)) {
    std::cerr << error << "\n" << parser.Usage(argv[0]);
    return 2;
  }
  if (options.ddl_path.empty() || options.workload_path.empty()) {
    std::cerr << parser.Usage(argv[0]);
    return 2;
  }

  std::string ddl, workload_sql;
  if (!ReadFile(options.ddl_path, &ddl)) {
    std::cerr << "cannot read " << options.ddl_path << "\n";
    return 1;
  }
  if (!ReadFile(options.workload_path, &workload_sql)) {
    std::cerr << "cannot read " << options.workload_path << "\n";
    return 1;
  }

  auto schema = sql::ParseDdl(ddl);
  if (!schema.ok()) {
    std::cerr << "DDL error: " << schema.status().ToString() << "\n";
    return 1;
  }
  auto queries = sql::ParseScript(workload_sql, *schema);
  if (!queries.ok()) {
    std::cerr << "workload error: " << queries.status().ToString() << "\n";
    return 1;
  }
  workload::Workload workload(std::move(*queries));
  workload.SetUniformFrequencies();
  std::cerr << "schema: " << schema->num_tables() << " tables, workload: "
            << workload.num_queries() << " queries\n";

  costmodel::HardwareProfile profile =
      options.common.profile == "disk"
          ? costmodel::HardwareProfile::DiskBased10G()
          : costmodel::HardwareProfile::InMemory10G();
  profile = profile.WithNodes(options.nodes);
  costmodel::CostModel cost_model(&*schema, profile);

  advisor::AdvisorConfig config;
  config.offline_episodes = options.episodes;
  config.dqn.tmax = std::max(schema->num_tables() + 4, 12);
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.seed = options.common.seed;
  advisor::PartitioningAdvisor advisor(&*schema, workload, config);
  EvalContext ctx(options.common.threads, options.common.seed);

  if (!options.load_path.empty()) {
    std::ifstream in(options.load_path);
    Status st = advisor::LoadAgentSnapshot(in, advisor.agent());
    if (!st.ok()) {
      std::cerr << "snapshot error: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "loaded agent snapshot from " << options.load_path << "\n";
  } else {
    std::cerr << "training (" << config.offline_episodes << " episodes, "
              << options.common.threads << " thread(s))...\n";
    advisor.TrainOffline(&cost_model, nullptr, &ctx);
  }

  std::vector<double> mix =
      options.mix.empty()
          ? std::vector<double>(static_cast<size_t>(workload.num_queries()), 1.0)
          : ParseMix(options.mix, workload.num_queries());

  // Suggest against the simulation (build one if we skipped training).
  rl::OfflineEnv env(&cost_model, &advisor.workload());
  auto result = advisor.Suggest(mix, &env, &ctx);

  for (schema::TableId t = 0; t < schema->num_tables(); ++t) {
    const auto& tp = result.best_state.table_partition(t);
    std::cout << "ALTER TABLE " << schema->table(t).name;
    if (tp.replicated) {
      std::cout << " REPLICATE;\n";
    } else {
      std::cout << " DISTRIBUTE BY HASH("
                << schema->table(t).columns[static_cast<size_t>(tp.column)].name
                << ");\n";
    }
  }
  std::cerr << "estimated workload cost: " << result.best_cost << "s\n";

  double measured_seconds = -1.0;
  if (!options.common.metrics_json.empty()) {
    // Materialize a small cluster and measure the suggested design on it so
    // the exported metrics carry real engine counters, not just simulation.
    storage::GenerationConfig gen;
    gen.fraction = 1e-3;
    gen.small_table_threshold = 64;
    gen.seed = options.common.seed;
    engine::EngineConfig engine_config;
    engine_config.hardware = profile;
    engine_config.seed = options.common.seed;
    engine::ClusterDatabase cluster(
        storage::Database::Generate(*schema, workload, gen), engine_config,
        &cost_model);
    cluster.ApplyDesign(result.best_state);
    measured_seconds = cluster.ExecuteWorkload(workload);
    std::cerr << "measured workload runtime (materialized sample): "
              << measured_seconds << "s\n";
  }

  if (options.common.metrics || !options.common.metrics_json.empty()) {
    auto manifest = telemetry::RunManifest::Make("lpa_advise");
    manifest.seed = options.common.seed;
    manifest.engine_profile = options.common.profile;
    manifest.schema = options.ddl_path;
    manifest.Set("episodes", std::to_string(config.offline_episodes));
    manifest.Set("nodes", std::to_string(options.nodes));
    manifest.Set("threads", std::to_string(options.common.threads));
    auto& registry = telemetry::MetricsRegistry::Global();
    if (options.common.metrics) {
      std::cerr << "\n" << registry.ToTable();
    }
    if (!options.common.metrics_json.empty()) {
      telemetry::JsonWriter w;
      w.BeginObject();
      w.Key("estimated_cost_seconds").Number(result.best_cost);
      w.Key("measured_runtime_seconds").Number(measured_seconds);
      w.Key("design").BeginArray();
      for (schema::TableId t = 0; t < schema->num_tables(); ++t) {
        const auto& tp = result.best_state.table_partition(t);
        w.BeginObject().Key("table").String(schema->table(t).name);
        if (tp.replicated) {
          w.Key("replicated").Bool(true);
        } else {
          w.Key("replicated").Bool(false);
          w.Key("partition_column")
              .String(schema->table(t)
                          .columns[static_cast<size_t>(tp.column)]
                          .name);
        }
        w.EndObject();
      }
      w.EndArray().EndObject();
      Status st = registry.WriteJsonFile(options.common.metrics_json, manifest,
                                         w.str());
      if (!st.ok()) {
        std::cerr << "metrics write error: " << st.ToString() << "\n";
        return 1;
      }
      std::cerr << "wrote metrics to " << options.common.metrics_json << "\n";
    }
  }

  if (!options.save_path.empty()) {
    std::ofstream out(options.save_path);
    Status st = advisor::SaveAgentSnapshot(*advisor.agent(), out);
    if (!st.ok()) {
      std::cerr << "snapshot save error: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "saved agent snapshot to " << options.save_path << "\n";
  }
  return 0;
}
