// lpa_advise: command-line partitioning advisor.
//
// Reads a schema (CREATE TABLE dialect, see sql/ddl.h) and a SQL workload,
// trains the DRL advisor against the network-centric cost model, and prints
// the suggested physical design as ALTER TABLE statements.
//
//   $ lpa_advise --ddl schema.sql --workload workload.sql
//                [--engine disk|memory] [--nodes 6] [--episodes 400]
//                [--mix 1,0.5,...] [--save agent.bin] [--load agent.bin]
//                [--seed 42] [--metrics] [--metrics-json out.json]
//
// With --load, training is skipped and the snapshot served directly.
// --metrics prints the telemetry table to stderr; --metrics-json
// additionally materializes a small cluster, measures the suggested design
// on it (so engine counters are populated), and writes metrics + manifest
// + the suggestion as JSON.

#include <fstream>
#include <iostream>
#include <sstream>

#include "advisor/advisor.h"
#include "advisor/serialization.h"
#include "engine/cluster.h"
#include "sql/ddl.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "telemetry/registry.h"

namespace {

struct Options {
  std::string ddl_path;
  std::string workload_path;
  std::string engine = "disk";
  int nodes = 6;
  int episodes = 400;
  std::string mix;
  std::string save_path;
  std::string load_path;
  uint64_t seed = 42;
  bool metrics = false;
  std::string metrics_json_path;
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --ddl schema.sql --workload workload.sql"
               " [--engine disk|memory] [--nodes N] [--episodes N]"
               " [--mix f1,f2,...] [--save file] [--load file] [--seed N]"
               " [--metrics] [--metrics-json file]\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::vector<double> ParseMix(const std::string& mix, int m) {
  std::vector<double> freqs;
  std::stringstream ss(mix);
  std::string item;
  while (std::getline(ss, item, ',')) freqs.push_back(std::stod(item));
  freqs.resize(static_cast<size_t>(m), 0.0);
  return freqs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpa;

  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--ddl") {
      options.ddl_path = next() ? argv[i] : "";
    } else if (arg == "--workload") {
      options.workload_path = next() ? argv[i] : "";
    } else if (arg == "--engine") {
      options.engine = next() ? argv[i] : "";
    } else if (arg == "--nodes") {
      options.nodes = next() ? std::atoi(argv[i]) : 6;
    } else if (arg == "--episodes") {
      options.episodes = next() ? std::atoi(argv[i]) : 400;
    } else if (arg == "--mix") {
      options.mix = next() ? argv[i] : "";
    } else if (arg == "--save") {
      options.save_path = next() ? argv[i] : "";
    } else if (arg == "--load") {
      options.load_path = next() ? argv[i] : "";
    } else if (arg == "--seed") {
      options.seed = next() ? std::strtoull(argv[i], nullptr, 10) : 42;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--metrics-json") {
      options.metrics_json_path = next() ? argv[i] : "";
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      options.metrics_json_path = arg.substr(std::string("--metrics-json=").size());
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.ddl_path.empty() || options.workload_path.empty()) {
    return Usage(argv[0]);
  }
  if (options.engine != "disk" && options.engine != "memory") {
    std::cerr << "--engine must be disk or memory\n";
    return 2;
  }

  std::string ddl, workload_sql;
  if (!ReadFile(options.ddl_path, &ddl)) {
    std::cerr << "cannot read " << options.ddl_path << "\n";
    return 1;
  }
  if (!ReadFile(options.workload_path, &workload_sql)) {
    std::cerr << "cannot read " << options.workload_path << "\n";
    return 1;
  }

  auto schema = sql::ParseDdl(ddl);
  if (!schema.ok()) {
    std::cerr << "DDL error: " << schema.status().ToString() << "\n";
    return 1;
  }
  auto queries = sql::ParseScript(workload_sql, *schema);
  if (!queries.ok()) {
    std::cerr << "workload error: " << queries.status().ToString() << "\n";
    return 1;
  }
  workload::Workload workload(std::move(*queries));
  workload.SetUniformFrequencies();
  std::cerr << "schema: " << schema->num_tables() << " tables, workload: "
            << workload.num_queries() << " queries\n";

  costmodel::HardwareProfile profile =
      options.engine == "disk" ? costmodel::HardwareProfile::DiskBased10G()
                               : costmodel::HardwareProfile::InMemory10G();
  profile = profile.WithNodes(options.nodes);
  costmodel::CostModel cost_model(&*schema, profile);

  advisor::AdvisorConfig config;
  config.offline_episodes = options.episodes;
  config.dqn.tmax = std::max(schema->num_tables() + 4, 12);
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.seed = options.seed;
  advisor::PartitioningAdvisor advisor(&*schema, workload, config);

  if (!options.load_path.empty()) {
    std::ifstream in(options.load_path);
    Status st = advisor::LoadAgentSnapshot(in, advisor.agent());
    if (!st.ok()) {
      std::cerr << "snapshot error: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "loaded agent snapshot from " << options.load_path << "\n";
  } else {
    std::cerr << "training (" << config.offline_episodes << " episodes)...\n";
    advisor.TrainOffline(&cost_model);
  }

  std::vector<double> mix =
      options.mix.empty()
          ? std::vector<double>(static_cast<size_t>(workload.num_queries()), 1.0)
          : ParseMix(options.mix, workload.num_queries());

  // Suggest against the simulation (build one if we skipped training).
  rl::OfflineEnv env(&cost_model, &advisor.workload());
  auto result = advisor.Suggest(mix, &env);

  for (schema::TableId t = 0; t < schema->num_tables(); ++t) {
    const auto& tp = result.best_state.table_partition(t);
    std::cout << "ALTER TABLE " << schema->table(t).name;
    if (tp.replicated) {
      std::cout << " REPLICATE;\n";
    } else {
      std::cout << " DISTRIBUTE BY HASH("
                << schema->table(t).columns[static_cast<size_t>(tp.column)].name
                << ");\n";
    }
  }
  std::cerr << "estimated workload cost: " << result.best_cost << "s\n";

  double measured_seconds = -1.0;
  if (!options.metrics_json_path.empty()) {
    // Materialize a small cluster and measure the suggested design on it so
    // the exported metrics carry real engine counters, not just simulation.
    storage::GenerationConfig gen;
    gen.fraction = 1e-3;
    gen.small_table_threshold = 64;
    gen.seed = options.seed;
    engine::EngineConfig engine_config;
    engine_config.hardware = profile;
    engine_config.seed = options.seed;
    engine::ClusterDatabase cluster(
        storage::Database::Generate(*schema, workload, gen), engine_config,
        &cost_model);
    cluster.ApplyDesign(result.best_state);
    measured_seconds = cluster.ExecuteWorkload(workload);
    std::cerr << "measured workload runtime (materialized sample): "
              << measured_seconds << "s\n";
  }

  if (options.metrics || !options.metrics_json_path.empty()) {
    auto manifest = telemetry::RunManifest::Make("lpa_advise");
    manifest.seed = options.seed;
    manifest.engine_profile = options.engine;
    manifest.schema = options.ddl_path;
    manifest.Set("episodes", std::to_string(config.offline_episodes));
    manifest.Set("nodes", std::to_string(options.nodes));
    auto& registry = telemetry::MetricsRegistry::Global();
    if (options.metrics) {
      std::cerr << "\n" << registry.ToTable();
    }
    if (!options.metrics_json_path.empty()) {
      telemetry::JsonWriter w;
      w.BeginObject();
      w.Key("estimated_cost_seconds").Number(result.best_cost);
      w.Key("measured_runtime_seconds").Number(measured_seconds);
      w.Key("design").BeginArray();
      for (schema::TableId t = 0; t < schema->num_tables(); ++t) {
        const auto& tp = result.best_state.table_partition(t);
        w.BeginObject().Key("table").String(schema->table(t).name);
        if (tp.replicated) {
          w.Key("replicated").Bool(true);
        } else {
          w.Key("replicated").Bool(false);
          w.Key("partition_column")
              .String(schema->table(t)
                          .columns[static_cast<size_t>(tp.column)]
                          .name);
        }
        w.EndObject();
      }
      w.EndArray().EndObject();
      Status st = registry.WriteJsonFile(options.metrics_json_path, manifest,
                                         w.str());
      if (!st.ok()) {
        std::cerr << "metrics write error: " << st.ToString() << "\n";
        return 1;
      }
      std::cerr << "wrote metrics to " << options.metrics_json_path << "\n";
    }
  }

  if (!options.save_path.empty()) {
    std::ofstream out(options.save_path);
    Status st = advisor::SaveAgentSnapshot(*advisor.agent(), out);
    if (!st.ok()) {
      std::cerr << "snapshot save error: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "saved agent snapshot to " << options.save_path << "\n";
  }
  return 0;
}
