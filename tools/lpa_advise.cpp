// lpa_advise: command-line partitioning advisor.
//
// Reads a schema (CREATE TABLE dialect, see sql/ddl.h) and a SQL workload,
// trains the DRL advisor against the network-centric cost model, and prints
// the suggested physical design as ALTER TABLE statements.
//
//   $ lpa_advise --ddl schema.sql --workload workload.sql
//                [--profile disk|memory] [--nodes 6] [--episodes 400]
//                [--threads 1] [--mix 1,0.5,...] [--save agent.bin]
//                [--load agent.bin] [--seed 42] [--metrics]
//                [--metrics-json out.json]
//
// --engine is accepted as an alias of --profile. --threads > 1 runs the
// parallel evaluation engine; seeded results are identical at any count.
//
// With --load, training is skipped and the snapshot served directly.
// --metrics prints the telemetry table to stderr; --metrics-json
// additionally materializes a small cluster, measures the suggested design
// on it (so engine counters are populated), and writes metrics + manifest
// + the suggestion as JSON.
//
// --autopilot keeps going after the one-shot advice: the trained advisor
// becomes the incumbent of a closed-loop autopilot driven through the
// scripted --drift-scenario (see src/autopilot/scenarios.h), and the tool
// reports detections, retrains, hot swaps, rollbacks, and the final deployed
// design.
//
//   $ lpa_advise --ddl schema.sql --workload workload.sql \
//       --autopilot --drift-scenario flash-crowd

#include <fstream>
#include <iostream>
#include <sstream>

#include "advisor/advisor_handle.h"
#include "autopilot/autopilot.h"
#include "autopilot/scenario_driver.h"
#include "autopilot/scenarios.h"
#include "engine/cluster.h"
#include "serving/model_registry.h"
#include "sql/ddl.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "telemetry/registry.h"
#include "util/cli.h"

namespace {

struct Options {
  std::string ddl_path;
  std::string workload_path;
  lpa::cli::CommonOptions common;
  lpa::autopilot::AutopilotOptions autopilot;
  int nodes = 6;
  int episodes = 400;
  std::string mix;
  std::string save_path;
  std::string load_path;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::vector<double> ParseMix(const std::string& mix, int m) {
  std::vector<double> freqs;
  std::stringstream ss(mix);
  std::string item;
  while (std::getline(ss, item, ',')) freqs.push_back(std::stod(item));
  freqs.resize(static_cast<size_t>(m), 0.0);
  return freqs;
}

void PrintDesign(const lpa::schema::Schema& schema,
                 const lpa::partition::PartitioningState& state) {
  for (lpa::schema::TableId t = 0; t < schema.num_tables(); ++t) {
    const auto& tp = state.table_partition(t);
    std::cout << "ALTER TABLE " << schema.table(t).name;
    if (tp.replicated) {
      std::cout << " REPLICATE;\n";
    } else {
      std::cout << " DISTRIBUTE BY HASH("
                << schema.table(t).columns[static_cast<size_t>(tp.column)].name
                << ");\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpa;

  Options options;
  cli::FlagParser parser;
  parser.AddString("ddl", "schema.sql", &options.ddl_path);
  parser.AddString("workload", "workload.sql", &options.workload_path);
  parser.AddInt("nodes", "cluster nodes", &options.nodes);
  parser.AddInt("episodes", "offline training episodes", &options.episodes);
  parser.AddString("mix", "f1,f2,...", &options.mix);
  parser.AddString("save", "agent snapshot out", &options.save_path);
  parser.AddString("load", "agent snapshot in", &options.load_path);
  options.common.Register(&parser);
  options.autopilot.Register(&parser);
  parser.AddAlias("engine", "profile");  // historical spelling
  std::string error;
  if (!parser.Parse(argc, argv, &error) || !options.common.Validate(&error) ||
      !options.autopilot.Validate(&error)) {
    std::cerr << error << "\n" << parser.Usage(argv[0]);
    return 2;
  }
  if (options.ddl_path.empty() || options.workload_path.empty()) {
    std::cerr << parser.Usage(argv[0]);
    return 2;
  }

  std::string ddl, workload_sql;
  if (!ReadFile(options.ddl_path, &ddl)) {
    std::cerr << "cannot read " << options.ddl_path << "\n";
    return 1;
  }
  if (!ReadFile(options.workload_path, &workload_sql)) {
    std::cerr << "cannot read " << options.workload_path << "\n";
    return 1;
  }

  auto schema = sql::ParseDdl(ddl);
  if (!schema.ok()) {
    std::cerr << "DDL error: " << schema.status().ToString() << "\n";
    return 1;
  }
  auto queries = sql::ParseScript(workload_sql, *schema);
  if (!queries.ok()) {
    std::cerr << "workload error: " << queries.status().ToString() << "\n";
    return 1;
  }
  workload::Workload workload(std::move(*queries));
  workload.SetUniformFrequencies();
  std::cerr << "schema: " << schema->num_tables() << " tables, workload: "
            << workload.num_queries() << " queries\n";

  costmodel::HardwareProfile profile =
      options.common.profile == "disk"
          ? costmodel::HardwareProfile::DiskBased10G()
          : costmodel::HardwareProfile::InMemory10G();
  profile = profile.WithNodes(options.nodes);
  costmodel::CostModel cost_model(&*schema, profile);

  advisor::AdvisorConfig config;
  config.offline_episodes = options.episodes;
  config.dqn.tmax = std::max(schema->num_tables() + 4, 12);
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.seed = options.common.seed;
  AdvisorHandle advisor(&*schema, workload, config);
  EvalContext ctx(options.common.threads, options.common.seed);

  if (!options.load_path.empty()) {
    std::string snapshot_bytes;
    if (!ReadFile(options.load_path, &snapshot_bytes)) {
      std::cerr << "cannot read " << options.load_path << "\n";
      return 1;
    }
    if (Status st = advisor.Restore(snapshot_bytes); !st.ok()) {
      std::cerr << "snapshot error: " << st.ToString() << "\n";
      return 1;
    }
    // The restored standby has no training environment yet: bind the pricing
    // model so Suggest (and any autopilot retrain) can run.
    if (Status st = advisor.BindCostModel(&cost_model); !st.ok()) {
      std::cerr << "bind error: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "loaded agent snapshot from " << options.load_path << "\n";
  } else {
    std::cerr << "training (" << config.offline_episodes << " episodes, "
              << options.common.threads << " thread(s))...\n";
    auto trained = advisor.Train(TrainSpec::Offline(&cost_model), &ctx);
    if (!trained.ok()) {
      std::cerr << "training error: " << trained.status().ToString() << "\n";
      return 1;
    }
  }

  std::vector<double> mix =
      options.mix.empty()
          ? std::vector<double>(static_cast<size_t>(workload.num_queries()), 1.0)
          : ParseMix(options.mix, workload.num_queries());

  SuggestRequest request;
  request.frequencies = mix;
  auto suggested = advisor.Suggest(request, &ctx);
  if (!suggested.ok()) {
    std::cerr << "suggest error: " << suggested.status().ToString() << "\n";
    return 1;
  }
  rl::InferenceResult result = *suggested;

  PrintDesign(*schema, result.best_state);
  std::cerr << "estimated workload cost: " << result.best_cost << "s\n";

  double measured_seconds = -1.0;
  if (!options.common.metrics_json.empty()) {
    // Materialize a small cluster and measure the suggested design on it so
    // the exported metrics carry real engine counters, not just simulation.
    storage::GenerationConfig gen;
    gen.fraction = 1e-3;
    gen.small_table_threshold = 64;
    gen.seed = options.common.seed;
    engine::EngineConfig engine_config;
    engine_config.hardware = profile;
    engine_config.seed = options.common.seed;
    engine::ClusterDatabase cluster(
        storage::Database::Generate(*schema, workload, gen), engine_config,
        &cost_model);
    cluster.ApplyDesign(result.best_state);
    measured_seconds = cluster.ExecuteWorkload(workload);
    std::cerr << "measured workload runtime (materialized sample): "
              << measured_seconds << "s\n";
  }

  if (options.common.metrics || !options.common.metrics_json.empty()) {
    auto manifest = telemetry::RunManifest::Make("lpa_advise");
    manifest.seed = options.common.seed;
    manifest.engine_profile = options.common.profile;
    manifest.schema = options.ddl_path;
    manifest.Set("episodes", std::to_string(config.offline_episodes));
    manifest.Set("nodes", std::to_string(options.nodes));
    manifest.Set("threads", std::to_string(options.common.threads));
    auto& registry = telemetry::MetricsRegistry::Global();
    if (options.common.metrics) {
      std::cerr << "\n" << registry.ToTable();
    }
    if (!options.common.metrics_json.empty()) {
      telemetry::JsonWriter w;
      w.BeginObject();
      w.Key("estimated_cost_seconds").Number(result.best_cost);
      w.Key("measured_runtime_seconds").Number(measured_seconds);
      w.Key("design").BeginArray();
      for (schema::TableId t = 0; t < schema->num_tables(); ++t) {
        const auto& tp = result.best_state.table_partition(t);
        w.BeginObject().Key("table").String(schema->table(t).name);
        if (tp.replicated) {
          w.Key("replicated").Bool(true);
        } else {
          w.Key("replicated").Bool(false);
          w.Key("partition_column")
              .String(schema->table(t)
                          .columns[static_cast<size_t>(tp.column)]
                          .name);
        }
        w.EndObject();
      }
      w.EndArray().EndObject();
      Status st = registry.WriteJsonFile(options.common.metrics_json, manifest,
                                         w.str());
      if (!st.ok()) {
        std::cerr << "metrics write error: " << st.ToString() << "\n";
        return 1;
      }
      std::cerr << "wrote metrics to " << options.common.metrics_json << "\n";
    }
  }

  if (!options.save_path.empty()) {
    auto snapshot = advisor.Snapshot();
    if (!snapshot.ok()) {
      std::cerr << "snapshot save error: " << snapshot.status().ToString()
                << "\n";
      return 1;
    }
    std::ofstream out(options.save_path);
    out << *snapshot;
    if (!out.good()) {
      std::cerr << "cannot write " << options.save_path << "\n";
      return 1;
    }
    std::cerr << "saved agent snapshot to " << options.save_path << "\n";
  }

  // --- Closed-loop autopilot against the scripted drift scenario ----------
  if (options.autopilot.autopilot) {
    auto kind = options.autopilot.Kind();  // validated above
    autopilot::AutopilotConfig loop;
    loop.retrain.threads = options.common.threads;
    loop.retrain.seed = options.common.seed + 17;
    autopilot::ApplyScenarioOverrides(*kind, &loop);

    autopilot::Autopilot pilot(std::move(advisor), &cost_model, loop);
    serving::ModelRegistry registry;
    pilot.AddTarget(&registry);
    if (Status st = pilot.Start(mix); !st.ok()) {
      std::cerr << "autopilot start error: " << st.ToString() << "\n";
      return 1;
    }

    autopilot::ScenarioDriver driver(&pilot, *kind,
                                     options.common.seed + 23);
    const int ticks = options.autopilot.autopilot_ticks > 0
                          ? options.autopilot.autopilot_ticks
                          : driver.default_ticks();
    std::cerr << "autopilot: scenario " << autopilot::ScenarioName(*kind)
              << ", " << ticks << " tick(s)...\n";
    for (int t = 0; t < ticks; ++t) {
      auto outcome = driver.Step(&std::cerr);
      if (!outcome.ok()) {
        std::cerr << "autopilot tick error: " << outcome.status().ToString()
                  << "\n";
        return 1;
      }
    }
    const auto& counters = pilot.counters();
    std::cerr << "autopilot: " << driver.drift_events() << " drift event(s), "
              << counters.retrains << " retrain(s), " << counters.swaps
              << " swap(s), " << counters.rollbacks
              << " rollback(s); serving model v" << registry.current_version()
              << "; final deployed cost " << driver.deployed_cost() << "s\n";
    std::cout << "\n-- autopilot final deployed design --\n";
    PrintDesign(*schema, pilot.deployed_design());
  }
  return 0;
}
