#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "advisor/advisor.h"
#include "baselines/heuristics.h"
#include "baselines/optimizer_designer.h"
#include "costmodel/noisy_model.h"
#include "engine/cluster.h"
#include "schema/catalogs.h"
#include "telemetry/registry.h"
#include "util/hash.h"
#include "util/table_printer.h"
#include "workload/benchmarks.h"

namespace lpa::bench {

/// \brief Global effort divisor: LPA_BENCH_SCALE=4 quarters every episode
/// count for quick smoke runs; 1 (default) runs the tuned configuration.
inline int BenchScale() {
  const char* env = std::getenv("LPA_BENCH_SCALE");
  if (env == nullptr) return 1;
  int scale = std::atoi(env);
  return scale >= 1 ? scale : 1;
}

inline int Scaled(int episodes) { return std::max(4, episodes / BenchScale()); }

/// \brief Which DBMS the simulated cluster mimics (Sec 7.1's two systems).
enum class EngineKind {
  kDiskBased,  ///< Postgres-XL-like
  kInMemory,   ///< System-X-like
};

inline const char* EngineName(EngineKind kind) {
  return kind == EngineKind::kDiskBased ? "disk-based (Postgres-XL-like)"
                                        : "in-memory (System-X-like)";
}

inline costmodel::HardwareProfile ProfileFor(EngineKind kind) {
  return kind == EngineKind::kDiskBased
             ? costmodel::HardwareProfile::DiskBased10G()
             : costmodel::HardwareProfile::InMemory10G();
}

/// \brief One fully wired evaluation testbed: schema, workload, candidate
/// edges, the exact cost model (offline rewards), the noisy optimizer (the
/// engine's planner and the Minimum-Optimizer baseline's estimator), and a
/// materialized cluster.
struct Testbed {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<workload::Workload> workload;
  std::unique_ptr<partition::EdgeSet> edges;
  std::unique_ptr<costmodel::CostModel> exact_model;
  /// The Minimum-Optimizer baseline's estimator: independence-assumption
  /// composite-join estimates plus strong depth noise.
  std::unique_ptr<costmodel::NoisyOptimizerModel> noisy_model;
  /// The engine's runtime planner: mildly noisy (borderline plan choices can
  /// flip, e.g. after an ANALYZE following bulk updates), but never absurd.
  std::unique_ptr<costmodel::NoisyOptimizerModel> planner_model;
  std::unique_ptr<engine::ClusterDatabase> cluster;

  partition::PartitioningState Initial() const {
    return partition::PartitioningState::Initial(schema.get(), edges.get());
  }

  /// \brief Deploy `design` and measure the frequency-weighted workload
  /// runtime on the cluster (simulated seconds).
  double Measure(const partition::PartitioningState& design) const {
    cluster->ApplyDesign(design);
    return cluster->ExecuteWorkload(*workload);
  }
};

/// \brief Build a testbed for one benchmark schema.
/// \param name "ssb", "tpcds", "tpcch", or "micro".
inline Testbed MakeTestbed(const std::string& name, EngineKind kind,
                           double fraction, uint64_t seed = 42,
                           double noise_stddev = 0.02,
                           bool encode_storage = true,
                           bool price_encoded_bytes = false) {
  Testbed tb;
  if (name == "ssb") {
    tb.schema = std::make_unique<schema::Schema>(schema::MakeSsbSchema());
    tb.workload = std::make_unique<workload::Workload>(
        workload::MakeSsbWorkload(*tb.schema));
  } else if (name == "tpcds") {
    tb.schema = std::make_unique<schema::Schema>(schema::MakeTpcdsSchema());
    tb.workload = std::make_unique<workload::Workload>(
        workload::MakeTpcdsWorkload(*tb.schema));
  } else if (name == "tpcch") {
    tb.schema = std::make_unique<schema::Schema>(schema::MakeTpcchSchema());
    tb.workload = std::make_unique<workload::Workload>(
        workload::MakeTpcchWorkload(*tb.schema));
  } else {
    tb.schema = std::make_unique<schema::Schema>(schema::MakeMicroSchema());
    tb.workload = std::make_unique<workload::Workload>(
        workload::MakeMicroWorkload(*tb.schema));
  }
  tb.edges = std::make_unique<partition::EdgeSet>(
      partition::EdgeSet::Extract(*tb.schema, *tb.workload));
  auto profile = ProfileFor(kind);
  tb.exact_model =
      std::make_unique<costmodel::CostModel>(tb.schema.get(), profile);
  tb.noisy_model = std::make_unique<costmodel::NoisyOptimizerModel>(
      tb.schema.get(), profile);
  tb.planner_model = std::make_unique<costmodel::NoisyOptimizerModel>(
      tb.schema.get(), profile, /*depth_sigma=*/0.05, /*seed=*/seed + 1,
      /*use_independence_assumption=*/false);

  storage::GenerationConfig gen;
  gen.fraction = fraction;
  gen.small_table_threshold = 64;
  gen.seed = seed;
  engine::EngineConfig engine_config;
  engine_config.hardware = profile;
  engine_config.noise_stddev = noise_stddev;
  engine_config.seed = seed;
  engine_config.encode_storage = encode_storage;
  engine_config.price_encoded_bytes = price_encoded_bytes;
  tb.cluster = std::make_unique<engine::ClusterDatabase>(
      storage::Database::Generate(*tb.schema, *tb.workload, gen),
      engine_config, tb.planner_model.get());
  return tb;
}

/// \brief Default materialization fraction per schema, chosen so each
/// testbed holds a few hundred thousand rows.
inline double DefaultFraction(const std::string& name) {
  if (name == "ssb") return 1e-3;
  if (name == "tpcds") return 2e-4;
  if (name == "tpcch") return 2e-3;
  return 1e-4;  // micro
}

/// \brief Offline-train an advisor on the testbed's exact cost model.
/// `ctx` (optional) supplies the evaluation engine's thread pool + RNG; the
/// default trains serially on the advisor's own context, as always.
inline std::unique_ptr<advisor::PartitioningAdvisor> TrainOfflineAdvisor(
    const Testbed& tb, int episodes, int tmax, uint64_t seed = 42,
    EvalContext* ctx = nullptr) {
  advisor::AdvisorConfig config;
  config.offline_episodes = Scaled(episodes);
  config.dqn.tmax = tmax;
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.seed = seed;
  auto adv = std::make_unique<advisor::PartitioningAdvisor>(
      tb.schema.get(), *tb.workload, config);
  adv->TrainOffline(tb.exact_model.get(), nullptr, ctx);
  return adv;
}

/// \brief Order-insensitive-free digest of a training curve: hashes every
/// double's bit pattern in sequence. Two runs print the same digest iff
/// their episode rewards are bit-identical — the quick check that
/// `--threads N` did not change a seeded result.
inline std::string RewardDigest(const std::vector<double>& rewards) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (double r : rewards) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(r));
    std::memcpy(&bits, &r, sizeof(bits));
    h = HashCombine(h, bits);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

/// \brief Format simulated seconds for table cells.
inline std::string Secs(double s) { return FormatDouble(s, 3) + "s"; }

/// \brief Machine-readable twin of the bench tables: collects every table a
/// bench binary prints and writes it — together with the telemetry metrics,
/// span aggregates, and a run manifest — to `BENCH_<name>.json` in
/// `$LPA_METRICS_DIR` (or the working directory).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    manifest_ = telemetry::RunManifest::Make("bench_" + name_);
    manifest_.Set("bench_scale", std::to_string(BenchScale()));
  }

  void set_seed(uint64_t seed) { manifest_.seed = seed; }
  void set_engine_profile(const std::string& p) { manifest_.engine_profile = p; }
  void set_schema(const std::string& s) { manifest_.schema = s; }
  void Note(const std::string& key, const std::string& value) {
    manifest_.Set(key, value);
  }

  /// \brief Print `table` under `title` (as the benches always did) and keep
  /// a structured copy for the JSON export.
  void Table(const std::string& title, const TablePrinter& table) {
    std::cout << "\n" << title << "\n";
    table.Print();
    tables_.emplace_back(title, table);
  }

  /// \brief Keep a structured copy without printing (for tables the bench
  /// renders itself, e.g. interleaved with narration).
  void Record(const std::string& title, const TablePrinter& table) {
    tables_.emplace_back(title, table);
  }

  ~BenchReport() { Write(); }

  void Write() {
    if (written_) return;
    written_ = true;
    telemetry::JsonWriter w;
    w.BeginObject().Key("tables").BeginArray();
    for (const auto& [title, table] : tables_) {
      w.BeginObject().Key("title").String(title);
      w.Key("headers").BeginArray();
      for (const auto& h : table.headers()) w.String(h);
      w.EndArray();
      w.Key("rows").BeginArray();
      for (const auto& row : table.rows()) {
        w.BeginArray();
        for (const auto& cell : row) w.String(cell);
        w.EndArray();
      }
      w.EndArray().EndObject();
    }
    w.EndArray().EndObject();

    const char* dir = std::getenv("LPA_METRICS_DIR");
    std::string path = (dir != nullptr && *dir != '\0')
                           ? std::string(dir) + "/BENCH_" + name_ + ".json"
                           : "BENCH_" + name_ + ".json";
    Status s = telemetry::MetricsRegistry::Global().WriteJsonFile(
        path, manifest_, w.str());
    if (s.ok()) {
      std::cout << "\n[metrics] wrote " << path << "\n";
    } else {
      std::cerr << "[metrics] write failed: " << s.ToString() << "\n";
    }
  }

 private:
  std::string name_;
  telemetry::RunManifest manifest_;
  std::vector<std::pair<std::string, TablePrinter>> tables_;
  bool written_ = false;
};

}  // namespace lpa::bench
