// Exp 3b (Fig 5): how often each approach picks the best partitioning for a
// previously unseen workload mix. Cluster A samples frequencies uniformly;
// cluster B over-weights the queries joining Stock and Item. Baselines are
// the paper's: Heuristic (a) always answers with the best fixed design from
// the online experiment; Heuristic (b) always answers with the
// stock-item-co-partitioned design. (TPC-CH, disk-based engine.)

#include <iostream>

#include "advisor/committee.h"
#include "bench/bench_common.h"
#include "rl/online_env.h"

namespace lpa::bench {
namespace {

/// Indices of queries joining stock with item-side tables.
std::vector<int> StockItemQueries(const Testbed& tb) {
  std::vector<int> result;
  schema::TableId stock = tb.schema->TableIndex("stock");
  schema::TableId item = tb.schema->TableIndex("item");
  for (int i = 0; i < tb.workload->num_queries(); ++i) {
    const auto& q = tb.workload->query(i);
    if (q.References(stock) && q.References(item)) result.push_back(i);
  }
  return result;
}

void Main() {
  BenchReport report("exp3b_mix");
  report.set_seed(42);
  report.set_schema("tpcch");
  report.set_engine_profile(EngineName(EngineKind::kDiskBased));
  // Ground truth uses the noise-free simulated clock: with several designs
  // within a few percent of each other, measurement jitter would otherwise
  // decide the "best" label arbitrarily.
  Testbed tb = MakeTestbed("tpcch", EngineKind::kDiskBased,
                           DefaultFraction("tpcch"), 42, /*noise_stddev=*/0.0);
  tb.workload->SetUniformFrequencies();
  const int m = tb.workload->num_queries();

  // Naive advisor: offline bootstrap + online refinement on a sampled
  // cluster. Suggestions and the committee are priced through the online
  // environment's Query Runtime Cache (the paper's committee ranks designs
  // by -sum f_j S_j c_sample, i.e. measured sample runtimes).
  auto naive = TrainOfflineAdvisor(tb, 1200, 36);
  storage::GenerationConfig gen;
  gen.fraction = DefaultFraction("tpcch");
  gen.small_table_threshold = 64;
  gen.seed = 42;
  engine::EngineConfig sample_config;
  sample_config.hardware = ProfileFor(EngineKind::kDiskBased);
  sample_config.seed = 43;
  engine::ClusterDatabase sample(
      storage::Database::Generate(*tb.schema, *tb.workload, gen)
          .Sample(0.25, 64, 7),
      sample_config, tb.planner_model.get());
  rl::OnlineEnv env(&sample, &naive->workload(), {}, rl::OnlineEnvOptions{});
  naive->mutable_config().online_episodes = Scaled(400);
  naive->TrainOnline(&env);

  // Committee of subspace experts on top of it.
  advisor::CommitteeConfig committee_config;
  committee_config.expert_episodes = Scaled(240);
  advisor::SubspaceCommittee committee(naive.get(), &env, committee_config);
  std::cout << "committee: " << committee.num_experts()
            << " subspace experts from " << m << " probe mixes\n";

  // Fixed-design baselines of Fig 5.
  std::vector<double> uniform(static_cast<size_t>(m), 1.0);
  auto fixed_a = naive->Suggest(uniform, &env).best_state;
  auto stock_item = tb.Initial();                     // stock-item design
  {
    schema::TableId stock = tb.schema->TableIndex("stock");
    schema::TableId item = tb.schema->TableIndex("item");
    LPA_CHECK(stock_item
                  .PartitionBy(stock, tb.schema->table(stock).ColumnIndex("s_i_id"))
                  .ok());
    LPA_CHECK(stock_item
                  .PartitionBy(item, tb.schema->table(item).ColumnIndex("i_id"))
                  .ok());
  }

  auto boosted = StockItemQueries(tb);
  const int kTrials = std::max(8, 40 / BenchScale());

  TablePrinter fig5({"approach", "Workload A", "Workload B",
                     "regret A", "regret B"});
  std::vector<std::vector<int>> correct(4, std::vector<int>(2, 0));
  std::vector<std::vector<double>> regret(4, std::vector<double>(2, 0.0));
  for (int cluster = 0; cluster < 2; ++cluster) {
    Rng rng(500 + static_cast<uint64_t>(cluster));
    for (int trial = 0; trial < kTrials; ++trial) {
      auto freqs = cluster == 0
                       ? workload::SampleUniformFrequencies(m, &rng)
                       : workload::SampleBoostedFrequencies(m, boosted, &rng);
      // Candidate designs per approach.
      std::vector<partition::PartitioningState> designs{
          naive->Suggest(freqs, &env).best_state,
          committee.Suggest(freqs, &env).best_state, fixed_a, stock_item};
      // Ground truth: measured runtime of each candidate for this mix.
      LPA_CHECK(tb.workload->SetFrequencies(freqs).ok());
      double best = 1e300;
      std::vector<double> runtime;
      for (const auto& d : designs) {
        runtime.push_back(tb.Measure(d));
        best = std::min(best, runtime.back());
      }
      for (size_t a = 0; a < designs.size(); ++a) {
        if (runtime[a] <= best * 1.02) {
          ++correct[a][static_cast<size_t>(cluster)];
        }
        regret[a][static_cast<size_t>(cluster)] +=
            100.0 * (runtime[a] / best - 1.0) / kTrials;
      }
    }
  }
  const char* kNames[] = {"RL Naive", "RL Subspace Experts", "Heuristic (a)",
                          "Heuristic (b)"};
  for (int a = 0; a < 4; ++a) {
    fig5.AddRow({kNames[a],
                 FormatDouble(100.0 * correct[static_cast<size_t>(a)][0] /
                                  kTrials, 0) + "%",
                 FormatDouble(100.0 * correct[static_cast<size_t>(a)][1] /
                                  kTrials, 0) + "%",
                 "+" + FormatDouble(regret[static_cast<size_t>(a)][0], 1) + "%",
                 "+" + FormatDouble(regret[static_cast<size_t>(a)][1], 1) + "%"});
  }
  report.Table(
      "Exp 3b / Fig 5: share of mixes for which each approach found the "
      "best partitioning (higher is better)",
      fig5);
}

}  // namespace
}  // namespace lpa::bench

int main() { lpa::bench::Main(); }
