// Ablations of the design choices DESIGN.md calls out:
//  1. Edge actions (Sec 3.2's co-partitioning shortcuts) on vs off.
//  2. Inference returning the best state on the trajectory vs the final
//     state (Sec 6).
//  3. Multi-head Q-network (repo default) vs the paper's state-action-input
//     network — same decisions, different training cost.
// All on SSB / disk-based, where training is cheap.

#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "rl/offline_env.h"

namespace lpa::bench {
namespace {

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void Main() {
  BenchReport report("ablation");
  report.set_seed(42);
  report.set_schema("ssb");
  report.set_engine_profile(EngineName(EngineKind::kDiskBased));
  Testbed tb = MakeTestbed("ssb", EngineKind::kDiskBased, DefaultFraction("ssb"));
  tb.workload->SetUniformFrequencies();
  const int m = tb.workload->num_queries();
  std::vector<double> uniform(static_cast<size_t>(m), 1.0);
  const int episodes = Scaled(400);

  // --- Ablation 1: edge actions --------------------------------------
  // Without edges the agent must reach co-partitionings through individual
  // per-table actions; the paper argues edges cut the exploration needed.
  {
    TablePrinter table({"episodes", "with edges (cost)", "without edges (cost)"});
    for (int budget : {episodes / 4, episodes / 2, episodes}) {
      std::vector<double> with_costs, without_costs;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        // With edges: the standard advisor.
        advisor::AdvisorConfig config;
        config.dqn.tmax = 16;
        config.offline_episodes = budget;
        config.dqn.FitEpsilonSchedule(budget);
        config.seed = seed;
        advisor::PartitioningAdvisor with_edges(tb.schema.get(), *tb.workload,
                                                config);
        with_edges.TrainOffline(tb.exact_model.get());
        with_costs.push_back(with_edges.Suggest(uniform).best_cost);

        // Without edges: an empty-workload edge extraction would still pick
        // up FK edges, so filter the action space by training against a
        // schema-only EdgeSet of size zero.
        workload::Workload no_join_wl;  // empty: no join equalities, no edges
        schema::Schema schema_copy = *tb.schema;
        // Drop FKs so EdgeSet::Extract finds nothing.
        schema::Schema bare("bare");
        for (const auto& t : schema_copy.tables()) bare.AddTable(t);
        advisor::PartitioningAdvisor no_edges(&bare, *tb.workload, config);
        rl::OfflineEnv env(tb.exact_model.get(), &no_edges.workload());
        no_edges.TrainOffline(tb.exact_model.get());
        without_costs.push_back(no_edges.Suggest(uniform).best_cost);
      }
      table.AddRow({std::to_string(budget), FormatDouble(Median(with_costs), 2),
                    FormatDouble(Median(without_costs), 2)});
    }
    report.Table(
        "Ablation 1: edge actions accelerate convergence (lower cost at "
        "equal budget is better)",
        table);
  }

  // --- Ablation 2: best-on-trajectory vs final-state inference -----------
  {
    auto advisor = TrainOfflineAdvisor(tb, 400, 16, 5);
    auto result = advisor->Suggest(uniform);
    // Re-derive the final state of the greedy rollout.
    auto state = tb.Initial();
    for (int action : result.actions) {
      LPA_CHECK(advisor->actions().Apply(action, &state).ok());
    }
    double final_cost =
        advisor->offline_env()->WorkloadCost(state, uniform);
    TablePrinter table({"inference rule", "suggested design cost"});
    table.AddRow({"best state on trajectory (Sec 6)",
                  FormatDouble(result.best_cost, 2)});
    table.AddRow({"final state of rollout", FormatDouble(final_cost, 2)});
    report.Table(
        "Ablation 2: the agent oscillates around the optimum; taking the "
        "best visited state is never worse",
        table);
  }

  // --- Ablation 3: multi-head vs state-action-input Q-network -----------
  {
    TablePrinter table({"Q-network", "suggested design cost",
                        "training wall-clock (s)"});
    for (auto mode : {rl::QNetworkMode::kMultiHead,
                      rl::QNetworkMode::kStateActionInput}) {
      advisor::AdvisorConfig config;
      config.dqn.tmax = 16;
      config.dqn.mode = mode;
      config.offline_episodes = Scaled(200);
      config.dqn.FitEpsilonSchedule(config.offline_episodes);
      config.seed = 9;
      advisor::PartitioningAdvisor advisor(tb.schema.get(), *tb.workload,
                                           config);
      auto start = std::chrono::steady_clock::now();
      advisor.TrainOffline(tb.exact_model.get());
      double wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      double cost = advisor.Suggest(uniform).best_cost;
      table.AddRow({mode == rl::QNetworkMode::kMultiHead
                        ? "multi-head (repo default)"
                        : "state-action input (paper Fig 2)",
                    FormatDouble(cost, 2), FormatDouble(wall, 1)});
    }
    report.Table(
        "Ablation 3: both Q-network formulations find comparable designs; "
        "multi-head trains far faster",
        table);
  }
}

}  // namespace
}  // namespace lpa::bench

int main() { lpa::bench::Main(); }
