// Exp 3c (Fig 6): additional training time when new queries join the
// workload, relative to training from scratch, with 25%/75% quantiles over
// random holdouts. The initial advisor is trained on TPC-CH minus k queries;
// the held-out queries are then added and the advisor retrained
// incrementally, reusing the online environment's Query Runtime Cache.

#include <iostream>

#include "bench/bench_common.h"
#include "rl/online_env.h"
#include "util/stats.h"

namespace lpa::bench {
namespace {

struct Run {
  double relative_time;  // incremental / from-scratch (simulated seconds)
};

double TrainAndAccount(const Testbed& tb, const workload::Workload& initial,
                       const std::vector<workload::QuerySpec>& added,
                       int episodes, bool incremental, uint64_t seed) {
  // A dedicated sampled cluster per run (the accounting must not share
  // caches across runs).
  storage::GenerationConfig gen;
  gen.fraction = DefaultFraction("tpcch");
  gen.small_table_threshold = 64;
  gen.seed = 42;
  engine::EngineConfig engine_config;
  engine_config.hardware = ProfileFor(EngineKind::kDiskBased);
  engine_config.seed = 43;
  engine::ClusterDatabase sample(
      storage::Database::Generate(*tb.schema, *tb.workload, gen).Sample(0.2, 64, 7),
      engine_config, tb.planner_model.get());

  advisor::AdvisorConfig config;
  config.dqn.tmax = 36;
  config.offline_episodes = Scaled(400);
  config.online_episodes = episodes;
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.reserve_query_slots = static_cast<int>(added.size());
  config.seed = seed;

  if (incremental) {
    // Train on the reduced workload first, then add the new queries and
    // retrain incrementally THROUGH THE SAME ENVIRONMENT: the Query Runtime
    // Cache of the initial training carries over (Sec 5), so only designs
    // involving the new queries cost cluster time. The accounted time is
    // the delta accrued by the incremental phase.
    advisor::PartitioningAdvisor advisor(tb.schema.get(), initial, config);
    advisor.TrainOffline(tb.exact_model.get());
    rl::OnlineEnv env(&sample, &advisor.workload(), {}, rl::OnlineEnvOptions{});
    advisor.TrainOnline(&env);
    double before = env.accounting().total_seconds();

    auto indices = advisor.AddQueries(added);
    // Incremental training converges on a narrower problem: mixes that
    // include the new queries. Its episode budget scales with the changed
    // fraction of the workload (the paper trains "only with frequency
    // vectors that include the new queries" and stops far earlier than a
    // full retrain).
    int total_queries = advisor.workload().num_queries();
    int incremental_episodes = std::max(
        episodes / 6,
        static_cast<int>(episodes * added.size()) / total_queries);
    advisor.TrainIncremental(&env, indices, incremental_episodes);
    return env.accounting().total_seconds() - before;
  }

  // From scratch on the full workload.
  workload::Workload full = initial;
  for (const auto& q : added) full.AddQuery(q);
  full.SetUniformFrequencies();
  advisor::PartitioningAdvisor advisor(tb.schema.get(), full, config);
  advisor.TrainOffline(tb.exact_model.get());
  rl::OnlineEnv env(&sample, &advisor.workload(), {}, rl::OnlineEnvOptions{});
  advisor.TrainOnline(&env);
  return env.accounting().total_seconds();
}

void Main() {
  BenchReport report("exp3c_incremental");
  report.set_seed(42);
  report.set_schema("tpcch");
  report.set_engine_profile(EngineName(EngineKind::kDiskBased));
  Testbed tb =
      MakeTestbed("tpcch", EngineKind::kDiskBased, DefaultFraction("tpcch"));
  tb.workload->SetUniformFrequencies();
  const int m = tb.workload->num_queries();
  const int kEpisodes = Scaled(240);
  const int kDraws = std::max(2, 3 / BenchScale() + 1);

  TablePrinter fig6({"additional queries", "median rel. time", "25% quantile",
                     "75% quantile"});
  for (int k : {2, 4, 8, 12, 16}) {
    std::vector<double> ratios;
    for (int draw = 0; draw < kDraws; ++draw) {
      Rng rng(900 + static_cast<uint64_t>(k * 10 + draw));
      // Hold out k random queries.
      std::vector<int> order(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) order[static_cast<size_t>(i)] = i;
      rng.Shuffle(&order);
      workload::Workload reduced;
      std::vector<workload::QuerySpec> held_out;
      for (int i = 0; i < m; ++i) {
        const auto& q = tb.workload->query(order[static_cast<size_t>(i)]);
        if (i < m - k) {
          reduced.AddQuery(q);
        } else {
          held_out.push_back(q);
        }
      }
      reduced.SetUniformFrequencies();

      double incremental = TrainAndAccount(tb, reduced, held_out, kEpisodes,
                                           true, 30 + static_cast<uint64_t>(draw));
      double scratch = TrainAndAccount(tb, reduced, held_out, kEpisodes, false,
                                       60 + static_cast<uint64_t>(draw));
      ratios.push_back(100.0 * incremental / scratch);
    }
    fig6.AddRow({std::to_string(k),
                 FormatDouble(Quantile(ratios, 0.5), 1) + "%",
                 FormatDouble(Quantile(ratios, 0.25), 1) + "%",
                 FormatDouble(Quantile(ratios, 0.75), 1) + "%"});
  }
  report.Table(
      "Exp 3c / Fig 6: incremental training time relative to full retraining",
      fig6);
}

}  // namespace
}  // namespace lpa::bench

int main() { lpa::bench::Main(); }
