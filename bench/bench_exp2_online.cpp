// Exp 2 (Fig 4a + Table 2): online refinement on TPC-CH / disk-based engine.
//
// Fig 4a: workload runtime of Heuristic (a)/(b), Minimum-Optimizer, the
// offline-trained agent, and the agent after online refinement on a sampled
// copy of the database.
//
// Table 2: (simulated) cluster time the online phase consumes under
// increasing sets of optimizations: none -> +runtime cache -> +lazy
// repartitioning -> +timeouts -> +offline bootstrap (Sec 4.2). Because our
// cluster clock is simulated, every configuration is actually run rather
// than counterfactually estimated.
//
//   $ bench_exp2_online [--threads N] [--seed N]
//
// --threads > 1 hands the execution engine a thread pool (see
// OnlineEnv::set_exec_context): every simulated query the online phase runs
// executes its scan / join / shuffle kernels pool-parallel. The pool never
// feeds the training RNG, so rewards — printed as a digest next to the
// wall-clock — are bit-identical at every --threads value.

#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "rl/online_env.h"
#include "util/cli.h"

namespace lpa::bench {
namespace {

struct OnlineSetup {
  Testbed tb;
  std::unique_ptr<engine::ClusterDatabase> sample_cluster;
  std::vector<double> scale_factors;
};

OnlineSetup MakeOnlineSetup(const partition::PartitioningState& p_offline) {
  OnlineSetup setup{MakeTestbed("tpcch", EngineKind::kDiskBased,
                                DefaultFraction("tpcch")),
                    nullptr,
                    {}};
  setup.tb.workload->SetUniformFrequencies();
  // The sampled database of Sec 4.2: 20% of rows, minimum 64 per table.
  storage::GenerationConfig gen;
  gen.fraction = DefaultFraction("tpcch");
  gen.small_table_threshold = 64;
  gen.seed = 42;
  auto full_db = storage::Database::Generate(*setup.tb.schema,
                                             *setup.tb.workload, gen);
  engine::EngineConfig config;
  config.hardware = ProfileFor(EngineKind::kDiskBased);
  config.noise_stddev = 0.02;
  config.seed = 43;
  setup.sample_cluster = std::make_unique<engine::ClusterDatabase>(
      full_db.Sample(0.2, 64, 7), config, setup.tb.planner_model.get());
  setup.scale_factors =
      rl::ComputeScaleFactors(setup.tb.cluster.get(), setup.sample_cluster.get(),
                              *setup.tb.workload, p_offline);
  return setup;
}

int Main(int argc, char** argv) {
  cli::CommonOptions common;
  cli::FlagParser parser;
  common.Register(&parser);
  std::string error;
  if (!parser.Parse(argc, argv, &error) || !common.Validate(&error)) {
    std::cerr << error << "\n" << parser.Usage(argv[0]);
    return 2;
  }

  BenchReport report("exp2_online");
  report.set_seed(42);
  report.set_schema("tpcch");
  report.set_engine_profile(EngineName(EngineKind::kDiskBased));
  report.Note("threads", std::to_string(common.threads));
  // The engine-side pool: accelerates simulated query execution without
  // touching any training RNG stream.
  EvalContext engine_ctx(common.threads, common.seed);
  // --- Offline phase ----------------------------------------------------
  Testbed tb =
      MakeTestbed("tpcch", EngineKind::kDiskBased, DefaultFraction("tpcch"));
  tb.workload->SetUniformFrequencies();
  auto advisor = TrainOfflineAdvisor(tb, 1200, 36);
  std::vector<double> uniform(static_cast<size_t>(tb.workload->num_queries()),
                              1.0);
  auto offline_result = advisor->Suggest(uniform);

  // --- Online phase -----------------------------------------------------
  OnlineSetup setup = MakeOnlineSetup(offline_result.best_state);
  rl::OnlineEnv online_env(setup.sample_cluster.get(), &advisor->workload(),
                           setup.scale_factors, rl::OnlineEnvOptions{});
  online_env.set_exec_context(&engine_ctx);
  advisor->mutable_workload().SetUniformFrequencies();
  advisor->mutable_config().online_episodes = Scaled(600);
  auto t0 = std::chrono::steady_clock::now();
  auto training = advisor->TrainOnline(&online_env);
  auto t1 = std::chrono::steady_clock::now();
  double train_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::cout << "online phase: " << FormatDouble(train_ms, 0) << " ms wall-clock"
            << " at --threads " << common.threads << ", reward digest "
            << RewardDigest(training.episode_best_rewards) << "\n";
  report.Note("online_train_wall_ms", FormatDouble(train_ms, 1));
  report.Note("online_reward_digest",
              RewardDigest(training.episode_best_rewards));
  auto online_result = advisor->Suggest(uniform, &online_env);

  auto heuristic_a = baselines::HeuristicA(*tb.schema, *tb.workload, *tb.edges);
  auto heuristic_b = baselines::HeuristicB(*tb.schema, *tb.workload, *tb.edges);
  baselines::OptimizerDesignerConfig designer;
  designer.random_restarts = 4;
  auto min_optimizer = baselines::MinimizeOptimizerCost(
      *tb.schema, *tb.workload, *tb.edges, *tb.noisy_model, designer);

  TablePrinter fig4a({"approach", "workload runtime", "vs RL online"});
  double t_online = tb.Measure(online_result.best_state);
  auto add = [&](const char* name, double t) {
    fig4a.AddRow({name, Secs(t), FormatDouble(t / t_online, 2) + "x"});
  };
  add("Heuristic (a)", tb.Measure(heuristic_a));
  add("Heuristic (b)", tb.Measure(heuristic_b));
  add("Minimum Optimizer", tb.Measure(min_optimizer));
  add("RL offline", tb.Measure(offline_result.best_state));
  add("RL online", t_online);
  report.Table(
      "Exp 2 / Fig 4a: online RL vs baselines (TPC-CH, disk-based engine)",
      fig4a);
  std::cout << "RL offline design: "
            << offline_result.best_state.PhysicalDesignKey() << "\n";
  std::cout << "RL online  design: "
            << online_result.best_state.PhysicalDesignKey() << "\n";

  // --- Table 2: training-time reduction of the optimizations -------------
  struct Variant {
    const char* name;
    rl::OnlineEnvOptions options;
    bool bootstrapped;
  };
  const Variant kVariants[] = {
      {"None", {false, false, false}, false},
      {"+ Runtime Cache", {true, false, false}, false},
      {"+ Lazy Repartitioning", {true, true, false}, false},
      {"+ Timeouts", {true, true, true}, false},
      {"+ Offline Phase", {true, true, true}, true},
  };

  TablePrinter table2({"Optimizations", "Training Time (sim. hours)",
                       "Speedup", "queries run", "cache hits"});
  double previous = 0.0;
  for (const auto& variant : kVariants) {
    OnlineSetup vsetup = MakeOnlineSetup(offline_result.best_state);
    rl::OnlineEnv env(vsetup.sample_cluster.get(), vsetup.tb.workload.get(),
                      vsetup.scale_factors, variant.options);
    env.set_exec_context(&engine_ctx);
    advisor::AdvisorConfig config;
    config.dqn.tmax = 36;
    // A cold agent needs the full schedule; the bootstrapped one refines.
    config.offline_episodes = Scaled(1200);
    config.online_episodes = variant.bootstrapped ? Scaled(300) : Scaled(600);
    config.dqn.FitEpsilonSchedule(config.online_episodes +
                                  (variant.bootstrapped ? config.offline_episodes : 0));
    config.seed = 77;
    advisor::PartitioningAdvisor agent(vsetup.tb.schema.get(),
                                       *vsetup.tb.workload, config);
    if (variant.bootstrapped) {
      agent.TrainOffline(vsetup.tb.exact_model.get());
      agent.TrainOnline(&env);
    } else {
      // Cold start: online training from scratch with full exploration.
      agent.agent()->set_epsilon(1.0);
      rl::FrequencySampler sampler = [&](Rng* rng) {
        return workload::SampleUniformFrequencies(
            vsetup.tb.workload->num_queries(), rng);
      };
      EvalContext train_ctx(/*threads=*/1, /*seed=*/5);
      agent.trainer().Train(agent.agent(), &env, sampler,
                            config.online_episodes, &train_ctx);
    }
    const auto& acc = env.accounting();
    double hours = acc.total_seconds() / 3600.0;
    table2.AddRow({variant.name, FormatDouble(hours, 4),
                   previous > 0.0 ? FormatDouble(previous / hours, 1) + "x" : "-",
                   std::to_string(acc.queries_executed),
                   std::to_string(acc.cache_hits)});
    previous = hours;
  }
  report.Table(
      "Exp 2 / Table 2: online training time under cumulative optimizations",
      table2);
  return 0;
}

}  // namespace
}  // namespace lpa::bench

int main(int argc, char** argv) { return lpa::bench::Main(argc, argv); }
