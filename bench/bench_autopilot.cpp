// Autopilot scenario sweep: runs the closed loop (drift detection ->
// incremental retrain -> holdout validation -> hot swap -> probation) against
// the scripted drift scenarios and emits cost-vs-time recovery curves plus a
// per-scenario summary to BENCH_autopilot.json.
//
// Acceptance gates (the binary exits non-zero when violated):
//  - the stable control run performs zero swaps (no false positives),
//  - every drift event in the drifting scenarios is detected and recovered
//    (final autopilot cost <= the frozen pre-drift design's cost),
//  - the forced-regression drill exercises >= 1 automatic rollback and ends
//    back on the incumbent design.
//
// Scaling waiver: this host pins the suite to 1 CPU, so the bench asserts
// correctness counters (detections, swaps, rollbacks, recovery ratios), not
// wall-clock throughput; LPA_BENCH_SCALE shortens the training budgets.

#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "advisor/advisor_handle.h"
#include "autopilot/autopilot.h"
#include "autopilot/scenario_driver.h"
#include "autopilot/scenarios.h"
#include "bench/bench_common.h"
#include "serving/model_registry.h"
#include "util/cli.h"

namespace lpa::bench {
namespace {

using autopilot::ApplyScenarioOverrides;
using autopilot::Autopilot;
using autopilot::AutopilotConfig;
using autopilot::ContendedProfile;
using autopilot::DriftScenario;
using autopilot::ObservedMixCost;
using autopilot::ScenarioKind;
using autopilot::ScenarioTick;
using autopilot::TickOutcome;
using autopilot::WorkloadSample;

struct ScenarioResult {
  ScenarioKind kind = ScenarioKind::kStable;
  int ticks = 0;
  int drift_events = 0;
  /// Ticks from the first drift onset to the first detector verdict
  /// (-1: no drift injected / never detected).
  int detection_latency = -1;
  autopilot::RetrainController::Counters counters;
  double autopilot_final = 0.0;  ///< deployed design cost at the last tick
  double frozen_final = 0.0;    ///< pre-drift design frozen for the whole run
  bool recovered_every_event = true;
  bool ended_on_original_design = false;
  TablePrinter curve{
      {"tick", "phase", "autopilot cost", "frozen cost", "action"}};
};

ScenarioResult RunScenario(ScenarioKind kind, const Testbed& tb,
                           const cli::CommonOptions& common, int ticks) {
  ScenarioResult result;
  result.kind = kind;

  // Incumbent specialized for the scenario's "day" era, so drift leaves
  // genuine adaptation headroom (a uniformly trained advisor would already
  // be near-optimal everywhere on small testbeds).
  advisor::AdvisorConfig config;
  config.dqn.tmax = 16;
  config.offline_episodes = Scaled(96);
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.seed = common.seed;
  AdvisorHandle incumbent(tb.schema.get(), *tb.workload, config);
  advisor::TrainSpec spec = advisor::TrainSpec::Offline(tb.exact_model.get());
  const int m = tb.workload->num_queries();
  spec.sampler = [m](Rng* rng) {
    std::vector<double> mix(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      mix[static_cast<size_t>(i)] =
          i < m / 2 ? 1.0 : rng->Uniform(0.02, 0.15);
    }
    return mix;
  };
  auto trained = incumbent.Train(spec);
  if (!trained.ok()) {
    std::cerr << "incumbent training failed: " << trained.status().ToString()
              << "\n";
    return result;
  }

  AutopilotConfig loop;
  loop.retrain.episodes = Scaled(36);
  loop.retrain.swap_margin = 0.005;
  loop.retrain.threads = common.threads;
  loop.retrain.seed = common.seed + 17;
  // Forced-regression: bypass the holdout gate and sabotage the candidate
  // with the naive initial design so probation must roll back.
  ApplyScenarioOverrides(kind, &loop);

  costmodel::CostModel contended(
      tb.schema.get(), ContendedProfile(tb.exact_model->hardware()));
  Autopilot pilot(std::move(incumbent), tb.exact_model.get(), loop);
  serving::ModelRegistry registry;
  pilot.AddTarget(&registry);

  DriftScenario scenario(kind, tb.schema.get(), tb.workload.get(),
                         common.seed + 23);
  ScenarioTick first = scenario.Next();
  Status started = pilot.Start(first.mix);
  if (!started.ok()) {
    std::cerr << "Start failed: " << started.ToString() << "\n";
    return result;
  }
  const partition::PartitioningState frozen = pilot.deployed_design();
  const std::string original_key = frozen.PhysicalDesignKey();

  const costmodel::CostModel* active_model = tb.exact_model.get();
  const int total = ticks > 0 ? ticks : scenario.default_ticks();
  result.ticks = total;
  int first_onset = -1;
  int first_verdict = -1;
  int last_onset = -1;
  std::vector<double> mix = first.mix;

  for (int t = 1; t < total; ++t) {
    ScenarioTick tick = scenario.Next();
    mix = tick.mix;
    if (tick.contention_begins) {
      active_model = &contended;
      pilot.UpdateCostModel(active_model);
    }
    const workload::Workload* live_workload =
        &pilot.controller().incumbent().advisor().workload();
    double autopilot_cost = ObservedMixCost(active_model, live_workload,
                                    pilot.deployed_design(), tick.mix);
    double frozen_cost =
        ObservedMixCost(active_model, live_workload, frozen, tick.mix);
    if (tick.drift_onset) {
      if (first_onset < 0) first_onset = t;
      last_onset = t;
    }

    WorkloadSample sample;
    sample.frequencies = tick.mix;
    sample.new_queries = tick.new_queries;
    sample.observed_cost = autopilot_cost;
    auto outcome = pilot.Tick(sample);
    if (!outcome.ok()) {
      std::cerr << "tick " << t << " failed: " << outcome.status().ToString()
                << "\n";
      break;
    }
    if (outcome->verdict.triggered() && first_verdict < 0 && first_onset >= 0) {
      first_verdict = t;
    }

    const char* phase = last_onset < 0 ? "pre-drift" : "post-drift";
    result.curve.AddRow({std::to_string(t), phase, Secs(autopilot_cost),
                         Secs(frozen_cost),
                         autopilot::TickActionName(outcome->action)});
  }

  result.drift_events = scenario.drift_events();
  result.detection_latency =
      (first_onset >= 0 && first_verdict >= 0) ? first_verdict - first_onset
                                               : -1;
  result.counters = pilot.counters();
  const workload::Workload* live_workload =
      &pilot.controller().incumbent().advisor().workload();
  result.autopilot_final =
      ObservedMixCost(active_model, live_workload, pilot.deployed_design(), mix);
  result.frozen_final = ObservedMixCost(active_model, live_workload, frozen, mix);
  // Recovery: the loop must end no worse than the frozen pre-drift design
  // under the drifted conditions (same final mix and pricing, so the
  // per-tick jitter cancels out of the comparison).
  if (result.drift_events > 0) {
    result.recovered_every_event =
        result.autopilot_final <= result.frozen_final * 1.0001;
  }
  result.ended_on_original_design =
      pilot.deployed_design().PhysicalDesignKey() == original_key;
  return result;
}

int Main(int argc, char** argv) {
  cli::FlagParser parser;
  cli::CommonOptions common;
  autopilot::AutopilotOptions options;
  options.drift_scenario = "all";  // the sweep default
  std::string schema_name = "ssb";
  common.Register(&parser);
  options.Register(&parser);
  parser.AddString("schema", "benchmark schema: ssb|tpcds|tpcch|micro",
                   &schema_name);
  parser.ParseOrExit(argc, argv);
  std::string error;
  if (!common.Validate(&error)) {
    std::cerr << error << "\n";
    return 2;
  }
  if (options.drift_scenario != "all" && !options.Validate(&error)) {
    std::cerr << error << "\n";
    return 2;
  }

  BenchReport report("autopilot");
  report.set_seed(common.seed);
  report.set_schema(schema_name);
  report.set_engine_profile(EngineName(EngineKind::kDiskBased));
  report.Note("scaling_waiver",
              "1-CPU host: correctness counters asserted, not throughput");
  Testbed tb = MakeTestbed(schema_name, EngineKind::kDiskBased,
                           DefaultFraction(schema_name), common.seed);

  std::vector<ScenarioKind> kinds;
  if (options.drift_scenario == "all") {
    kinds = autopilot::AllScenarios();
  } else {
    kinds.push_back(*options.Kind());
  }

  TablePrinter summary({"scenario", "ticks", "drift events", "detect lat.",
                        "retrains", "swaps", "rollbacks", "autopilot cost",
                        "frozen cost", "recovered"});
  bool ok = true;
  auto& false_swaps =
      telemetry::MetricsRegistry::Global().GetGauge("autopilot.false_swaps");
  false_swaps.Set(0.0);

  for (ScenarioKind kind : kinds) {
    std::cout << "\n[autopilot] scenario " << ScenarioName(kind) << "...\n";
    ScenarioResult r =
        RunScenario(kind, tb, common, options.autopilot_ticks);
    report.Record(std::string("recovery curve: ") + ScenarioName(kind),
                  r.curve);
    std::string recovered =
        r.drift_events == 0 ? "n/a" : (r.recovered_every_event ? "yes" : "NO");
    summary.AddRow({ScenarioName(kind), std::to_string(r.ticks),
                    std::to_string(r.drift_events),
                    r.detection_latency < 0
                        ? "-"
                        : std::to_string(r.detection_latency),
                    std::to_string(r.counters.retrains),
                    std::to_string(r.counters.swaps),
                    std::to_string(r.counters.rollbacks), Secs(r.autopilot_final),
                    Secs(r.frozen_final), recovered});

    switch (kind) {
      case ScenarioKind::kStable:
        if (r.counters.swaps != 0 || r.counters.retrains != 0) {
          std::cerr << "[autopilot] FAIL: stable control swapped/retrained\n";
          ok = false;
        }
        if (false_swaps.value() != 0.0) {
          std::cerr << "[autopilot] FAIL: false_swaps gauge nonzero on "
                       "stable control\n";
          ok = false;
        }
        break;
      case ScenarioKind::kForcedRegression:
        if (r.counters.rollbacks < 1) {
          std::cerr << "[autopilot] FAIL: forced regression never rolled "
                       "back\n";
          ok = false;
        }
        if (!r.ended_on_original_design) {
          std::cerr << "[autopilot] FAIL: rollback did not restore the "
                       "incumbent design\n";
          ok = false;
        }
        break;
      default:
        if (r.drift_events > 0 &&
            (r.detection_latency < 0 || !r.recovered_every_event)) {
          std::cerr << "[autopilot] FAIL: " << ScenarioName(kind)
                    << " not detected+recovered\n";
          ok = false;
        }
        break;
    }
  }

  report.Table("Autopilot scenario sweep (closed-loop drift response)",
               summary);
  std::cout << (ok ? "\n[autopilot] acceptance: PASS\n"
                   : "\n[autopilot] acceptance: FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lpa::bench

int main(int argc, char** argv) { return lpa::bench::Main(argc, argv); }
