// Component microbenchmarks (google-benchmark): throughput guardrails for
// the library's hot paths — cost-model planning, featurization, NN forward/
// train, engine execution, and data generation — plus two kernels run after
// the google benchmarks: a workload-cost kernel comparing full recompute
// against incremental delta costing (BENCH_micro_components.json) and an
// engine kernel measuring pool-parallel ExecuteWorkload scaling with
// bit-identity checks (BENCH_engine.json).

#include <benchmark/benchmark.h>

#include <chrono>

#include "advisor/workload_monitor.h"
#include "bench_common.h"
#include "costmodel/cost_model.h"
#include "costmodel/workload_cost_tracker.h"
#include "sql/ddl.h"
#include "sql/parser.h"
#include "engine/cluster.h"
#include "nn/mlp.h"
#include "partition/featurizer.h"
#include "rl/dqn.h"
#include "rl/offline_env.h"
#include "schema/catalogs.h"
#include "storage/database.h"
#include "workload/benchmarks.h"

namespace lpa {
namespace {

struct SsbFixture {
  SsbFixture()
      : schema(schema::MakeSsbSchema()),
        wl(workload::MakeSsbWorkload(schema)),
        edges(partition::EdgeSet::Extract(schema, wl)),
        model(&schema, costmodel::HardwareProfile::DiskBased10G()),
        state(partition::PartitioningState::Initial(&schema, &edges)) {}

  schema::Schema schema;
  workload::Workload wl;
  partition::EdgeSet edges;
  costmodel::CostModel model;
  partition::PartitioningState state;
};

SsbFixture& Ssb() {
  static SsbFixture fixture;
  return fixture;
}

void BM_CostModelPlanSsbQuery(benchmark::State& s) {
  auto& f = Ssb();
  const auto& q = f.wl.query(10);  // q4.1: all five tables
  for (auto _ : s) {
    benchmark::DoNotOptimize(f.model.QueryCost(q, f.state));
  }
}
BENCHMARK(BM_CostModelPlanSsbQuery);

void BM_CostModelPlanTpcdsQuery(benchmark::State& s) {
  static schema::Schema schema = schema::MakeTpcdsSchema();
  static workload::Workload wl = workload::MakeTpcdsWorkload(schema);
  static partition::EdgeSet edges = partition::EdgeSet::Extract(schema, wl);
  static costmodel::CostModel model(&schema,
                                    costmodel::HardwareProfile::DiskBased10G());
  static auto state = partition::PartitioningState::Initial(&schema, &edges);
  const auto& q = wl.query(53);  // 6-table demographic query
  for (auto _ : s) {
    benchmark::DoNotOptimize(model.QueryCost(q, state));
  }
}
BENCHMARK(BM_CostModelPlanTpcdsQuery);

void BM_FeaturizerEncodeState(benchmark::State& s) {
  auto& f = Ssb();
  partition::Featurizer featurizer(&f.schema, &f.edges, f.wl.num_queries());
  std::vector<double> freqs(static_cast<size_t>(f.wl.num_queries()), 1.0);
  for (auto _ : s) {
    benchmark::DoNotOptimize(featurizer.EncodeState(f.state, freqs));
  }
}
BENCHMARK(BM_FeaturizerEncodeState);

void BM_LegalActions(benchmark::State& s) {
  auto& f = Ssb();
  partition::ActionSpace actions(&f.schema, &f.edges);
  for (auto _ : s) {
    benchmark::DoNotOptimize(actions.LegalActions(f.state));
  }
}
BENCHMARK(BM_LegalActions);

void BM_MlpForward128x64(benchmark::State& s) {
  nn::MlpConfig config;
  config.input_dim = 64;
  config.hidden = {128, 64};
  config.output_dim = 32;
  nn::Mlp mlp(config);
  nn::Matrix x(32, 64, 0.1);
  for (auto _ : s) {
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
}
BENCHMARK(BM_MlpForward128x64);

void BM_DqnTrainStep(benchmark::State& s) {
  auto& f = Ssb();
  partition::ActionSpace actions(&f.schema, &f.edges);
  partition::Featurizer featurizer(&f.schema, &f.edges, f.wl.num_queries());
  rl::DqnConfig config;
  config.tmax = 16;
  rl::DqnAgent agent(&featurizer, &actions, config);
  std::vector<double> freqs(static_cast<size_t>(f.wl.num_queries()), 1.0);
  auto enc = featurizer.EncodeState(f.state, freqs);
  auto legal = actions.LegalActions(f.state);
  for (int i = 0; i < 64; ++i) {
    agent.Observe(rl::Transition{enc, legal[0], -1.0, enc, legal});
  }
  Rng rng(3);
  for (auto _ : s) {
    benchmark::DoNotOptimize(agent.TrainStep(&rng));
  }
}
BENCHMARK(BM_DqnTrainStep);

void BM_EngineExecuteQuery(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 2e-4;
  gen.seed = 5;
  static engine::ClusterDatabase cluster(
      storage::Database::Generate(f.schema, f.wl, gen),
      engine::EngineConfig{costmodel::HardwareProfile::DiskBased10G(), 0.0, 5},
      &f.model);
  cluster.ApplyDesign(f.state);
  const auto& q = f.wl.query(6);  // q3.1
  for (auto _ : s) {
    benchmark::DoNotOptimize(cluster.ExecuteQuery(q));
  }
}
BENCHMARK(BM_EngineExecuteQuery);

void BM_GenerateSsbDatabase(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 1e-4;
  gen.seed = 5;
  for (auto _ : s) {
    benchmark::DoNotOptimize(storage::Database::Generate(f.schema, f.wl, gen));
  }
}
BENCHMARK(BM_GenerateSsbDatabase);

void BM_RepartitionFactTable(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 2e-4;
  gen.seed = 5;
  engine::ClusterDatabase cluster(
      storage::Database::Generate(f.schema, f.wl, gen),
      engine::EngineConfig{costmodel::HardwareProfile::DiskBased10G(), 0.0, 5},
      &f.model);
  auto a = partition::PartitioningState::Initial(&f.schema, &f.edges);
  auto b = a;
  schema::TableId lo = f.schema.TableIndex("lineorder");
  LPA_CHECK(b.PartitionBy(lo, f.schema.table(lo).ColumnIndex("lo_custkey")).ok());
  bool flip = false;
  for (auto _ : s) {
    benchmark::DoNotOptimize(cluster.ApplyDesign(flip ? a : b));
    flip = !flip;
  }
}
BENCHMARK(BM_RepartitionFactTable);

void BM_SqlParseQuery(benchmark::State& s) {
  auto& f = Ssb();
  const std::string sql =
      "SELECT SUM(lo_payload) FROM lineorder l, customer c, supplier su, date d "
      "WHERE l.lo_custkey = c.c_custkey AND l.lo_suppkey = su.s_suppkey "
      "AND l.lo_orderdate = d.d_datekey AND c.c_region = 1 AND su.s_nation = 7 "
      "GROUP BY d.d_year ORDER BY d.d_year LIMIT 100";
  for (auto _ : s) {
    benchmark::DoNotOptimize(sql::ParseQuery(sql, f.schema, "bench"));
  }
}
BENCHMARK(BM_SqlParseQuery);

void BM_DdlParseSchema(benchmark::State& s) {
  const std::string ddl =
      "CREATE TABLE region (r_id INT PRIMARY KEY, r_name VARCHAR(32)) ROWS 50;"
      "CREATE TABLE product (p_id INT PRIMARY KEY, "
      "p_region INT REFERENCES region(r_id), p_category INT DISTINCT 40, "
      "p_name VARCHAR(80)) ROWS 2000000;"
      "CREATE TABLE sales (s_id BIGINT PRIMARY KEY, "
      "s_product INT REFERENCES product(p_id), s_amount DECIMAL(10,2)) "
      "FACT ROWS 400000000;";
  for (auto _ : s) {
    benchmark::DoNotOptimize(sql::ParseDdl(ddl));
  }
}
BENCHMARK(BM_DdlParseSchema);

void BM_ClassifyQueryInstance(benchmark::State& s) {
  auto& f = Ssb();
  advisor::QueryClassifier classifier(&f.wl);
  Rng rng(3);
  auto instance = workload::MakeParameterizedSsbInstance(f.wl, 6, 0.3, &rng);
  for (auto _ : s) {
    benchmark::DoNotOptimize(classifier.Classify(instance));
  }
}
BENCHMARK(BM_ClassifyQueryInstance);

}  // namespace

// ---------------------------------------------------------------------------
// Workload-cost kernel: full recompute vs incremental delta costing.
//
// Replays one seeded random action walk through the offline environment twice
// — once pricing every step with WorkloadCost (what training did before the
// tracker) and once with a WorkloadCostTracker fed Action::AffectedTables
// hints — and reports cost-model cache probes per step, ns per step, and the
// digest of the per-step totals. The digests MUST match: the incremental path
// is bit-identical by contract.

void RunWorkloadCostKernel() {
  bench::BenchReport report("micro_components");
  report.set_seed(42);
  const int steps = std::max(32, 4096 / bench::BenchScale());
  report.Note("workload_cost_steps", std::to_string(steps));

  TablePrinter table(
      {"schema", "mode", "probes/step", "ns/step", "total digest"});
  for (const std::string& name : {std::string("ssb"), std::string("tpcch")}) {
    auto tb = bench::MakeTestbed(name, bench::EngineKind::kDiskBased,
                                 /*fraction=*/1e-4);
    partition::ActionSpace actions(tb.schema.get(), tb.edges.get());
    std::vector<double> freqs(
        static_cast<size_t>(tb.workload->num_queries()), 1.0);

    // One shared walk so both modes price the identical state sequence.
    std::vector<int> walk;
    {
      Rng rng(42);
      auto state = tb.Initial();
      for (int i = 0; i < steps; ++i) {
        auto legal = actions.LegalActions(state);
        int action = legal[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(legal.size()) - 1))];
        LPA_CHECK(actions.Apply(action, &state).ok());
        walk.push_back(action);
      }
    }

    auto run_mode = [&](bool incremental) {
      // Fresh env per mode: both start from a cold cost cache.
      rl::OfflineEnv env(tb.exact_model.get(), tb.workload.get());
      std::unique_ptr<costmodel::WorkloadCostTracker> tracker;
      if (incremental) {
        tracker = std::make_unique<costmodel::WorkloadCostTracker>(
            tb.workload.get(),
            [&env](int j, const partition::PartitioningState& s) {
              return env.QueryCost(j, s, 1.0);
            });
      }
      auto state = tb.Initial();
      std::vector<double> totals;
      totals.reserve(walk.size());
      size_t probes_before = env.evaluations();
      auto t0 = std::chrono::steady_clock::now();
      for (int action : walk) {
        LPA_CHECK(actions.Apply(action, &state).ok());
        totals.push_back(
            incremental
                ? tracker->EvaluateDelta(state, actions.AffectedTables(action),
                                         freqs)
                : env.WorkloadCost(state, freqs));
      }
      auto t1 = std::chrono::steady_clock::now();
      double ns_per_step =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          static_cast<double>(walk.size());
      double probes_per_step =
          static_cast<double>(env.evaluations() - probes_before) /
          static_cast<double>(walk.size());
      table.AddRow({name, incremental ? "incremental" : "full",
                    FormatDouble(probes_per_step, 2),
                    FormatDouble(ns_per_step, 0),
                    bench::RewardDigest(totals)});
      return totals;
    };

    auto full = run_mode(/*incremental=*/false);
    auto incr = run_mode(/*incremental=*/true);
    LPA_CHECK(full == incr);  // bit-identical totals, the tracker's contract
  }
  report.Table("Workload cost per training step: full recompute vs incremental",
               table);
}

// ---------------------------------------------------------------------------
// Engine kernel: pool-parallel ExecuteWorkload vs the serial path.
//
// Runs the full SSB workload on the materialized cluster at 1/2/8 threads,
// reporting wall-clock per workload pass and the speedup over serial. The
// per-query seconds digests MUST match across thread counts: the parallel
// engine is bit-identical by contract (order-fixed merges, forked RNG-free
// noise). Emits BENCH_engine.json.

void RunEngineKernel() {
  bench::BenchReport report("engine");
  report.set_seed(42);
  report.set_schema("ssb");
  report.set_engine_profile(bench::EngineName(bench::EngineKind::kDiskBased));
  auto tb = bench::MakeTestbed("ssb", bench::EngineKind::kDiskBased,
                               bench::DefaultFraction("ssb"));
  tb.cluster->ApplyDesign(tb.Initial());
  const int reps = std::max(2, 16 / bench::BenchScale());
  report.Note("engine_kernel_reps", std::to_string(reps));

  auto& reg = telemetry::MetricsRegistry::Global();
  uint64_t probes0 = reg.GetCounter("engine.join_probes.count").value();

  TablePrinter table({"threads", "ms/workload", "speedup", "per-query digest"});
  double serial_ms = 0.0;
  std::string serial_digest;
  for (int threads : {1, 2, 8}) {
    EvalContext ctx(threads, 7);
    EvalContext* pctx = threads > 1 ? &ctx : nullptr;
    // One warm-up pass so every mode times execution, not planning (the plan
    // cache is shared across modes anyway).
    tb.cluster->ExecuteWorkload(*tb.workload, pctx);
    std::vector<double> per_query;
    for (int i = 0; i < tb.workload->num_queries(); ++i) {
      per_query.push_back(
          tb.cluster->ExecuteQuery(tb.workload->query(i), pctx).seconds);
    }
    std::string digest = bench::RewardDigest(per_query);
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      benchmark::DoNotOptimize(tb.cluster->ExecuteWorkload(*tb.workload, pctx));
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()) /
        1000.0 / static_cast<double>(reps);
    if (threads == 1) {
      serial_ms = ms;
      serial_digest = digest;
      report.Note("serial_ms_per_workload", FormatDouble(ms, 3));
    }
    LPA_CHECK(digest == serial_digest);  // parallel must not change results
    table.AddRow({std::to_string(threads), FormatDouble(ms, 2),
                  FormatDouble(serial_ms / ms, 2) + "x", digest});
  }
  report.Table(
      "Engine kernel: ExecuteWorkload wall-clock vs threads "
      "(digests must be identical)",
      table);
  report.Note("join_probes",
              std::to_string(
                  reg.GetCounter("engine.join_probes.count").value() - probes0));
  report.Note(
      "plan_cache_hits",
      std::to_string(reg.GetCounter("engine.plan_cache_hits.count").value()));
}

}  // namespace lpa

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpa::RunWorkloadCostKernel();
  lpa::RunEngineKernel();
  return 0;
}
