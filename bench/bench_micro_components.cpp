// Component microbenchmarks (google-benchmark): throughput guardrails for
// the library's hot paths — cost-model planning, featurization, NN forward/
// train, engine execution, and data generation.

#include <benchmark/benchmark.h>

#include "advisor/workload_monitor.h"
#include "costmodel/cost_model.h"
#include "sql/ddl.h"
#include "sql/parser.h"
#include "engine/cluster.h"
#include "nn/mlp.h"
#include "partition/featurizer.h"
#include "rl/dqn.h"
#include "schema/catalogs.h"
#include "storage/database.h"
#include "workload/benchmarks.h"

namespace lpa {
namespace {

struct SsbFixture {
  SsbFixture()
      : schema(schema::MakeSsbSchema()),
        wl(workload::MakeSsbWorkload(schema)),
        edges(partition::EdgeSet::Extract(schema, wl)),
        model(&schema, costmodel::HardwareProfile::DiskBased10G()),
        state(partition::PartitioningState::Initial(&schema, &edges)) {}

  schema::Schema schema;
  workload::Workload wl;
  partition::EdgeSet edges;
  costmodel::CostModel model;
  partition::PartitioningState state;
};

SsbFixture& Ssb() {
  static SsbFixture fixture;
  return fixture;
}

void BM_CostModelPlanSsbQuery(benchmark::State& s) {
  auto& f = Ssb();
  const auto& q = f.wl.query(10);  // q4.1: all five tables
  for (auto _ : s) {
    benchmark::DoNotOptimize(f.model.QueryCost(q, f.state));
  }
}
BENCHMARK(BM_CostModelPlanSsbQuery);

void BM_CostModelPlanTpcdsQuery(benchmark::State& s) {
  static schema::Schema schema = schema::MakeTpcdsSchema();
  static workload::Workload wl = workload::MakeTpcdsWorkload(schema);
  static partition::EdgeSet edges = partition::EdgeSet::Extract(schema, wl);
  static costmodel::CostModel model(&schema,
                                    costmodel::HardwareProfile::DiskBased10G());
  static auto state = partition::PartitioningState::Initial(&schema, &edges);
  const auto& q = wl.query(53);  // 6-table demographic query
  for (auto _ : s) {
    benchmark::DoNotOptimize(model.QueryCost(q, state));
  }
}
BENCHMARK(BM_CostModelPlanTpcdsQuery);

void BM_FeaturizerEncodeState(benchmark::State& s) {
  auto& f = Ssb();
  partition::Featurizer featurizer(&f.schema, &f.edges, f.wl.num_queries());
  std::vector<double> freqs(static_cast<size_t>(f.wl.num_queries()), 1.0);
  for (auto _ : s) {
    benchmark::DoNotOptimize(featurizer.EncodeState(f.state, freqs));
  }
}
BENCHMARK(BM_FeaturizerEncodeState);

void BM_LegalActions(benchmark::State& s) {
  auto& f = Ssb();
  partition::ActionSpace actions(&f.schema, &f.edges);
  for (auto _ : s) {
    benchmark::DoNotOptimize(actions.LegalActions(f.state));
  }
}
BENCHMARK(BM_LegalActions);

void BM_MlpForward128x64(benchmark::State& s) {
  nn::MlpConfig config;
  config.input_dim = 64;
  config.hidden = {128, 64};
  config.output_dim = 32;
  nn::Mlp mlp(config);
  nn::Matrix x(32, 64, 0.1);
  for (auto _ : s) {
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
}
BENCHMARK(BM_MlpForward128x64);

void BM_DqnTrainStep(benchmark::State& s) {
  auto& f = Ssb();
  partition::ActionSpace actions(&f.schema, &f.edges);
  partition::Featurizer featurizer(&f.schema, &f.edges, f.wl.num_queries());
  rl::DqnConfig config;
  config.tmax = 16;
  rl::DqnAgent agent(&featurizer, &actions, config);
  std::vector<double> freqs(static_cast<size_t>(f.wl.num_queries()), 1.0);
  auto enc = featurizer.EncodeState(f.state, freqs);
  auto legal = actions.LegalActions(f.state);
  for (int i = 0; i < 64; ++i) {
    agent.Observe(rl::Transition{enc, legal[0], -1.0, enc, legal});
  }
  Rng rng(3);
  for (auto _ : s) {
    benchmark::DoNotOptimize(agent.TrainStep(&rng));
  }
}
BENCHMARK(BM_DqnTrainStep);

void BM_EngineExecuteQuery(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 2e-4;
  gen.seed = 5;
  static engine::ClusterDatabase cluster(
      storage::Database::Generate(f.schema, f.wl, gen),
      engine::EngineConfig{costmodel::HardwareProfile::DiskBased10G(), 0.0, 5},
      &f.model);
  cluster.ApplyDesign(f.state);
  const auto& q = f.wl.query(6);  // q3.1
  for (auto _ : s) {
    benchmark::DoNotOptimize(cluster.ExecuteQuery(q));
  }
}
BENCHMARK(BM_EngineExecuteQuery);

void BM_GenerateSsbDatabase(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 1e-4;
  gen.seed = 5;
  for (auto _ : s) {
    benchmark::DoNotOptimize(storage::Database::Generate(f.schema, f.wl, gen));
  }
}
BENCHMARK(BM_GenerateSsbDatabase);

void BM_RepartitionFactTable(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 2e-4;
  gen.seed = 5;
  engine::ClusterDatabase cluster(
      storage::Database::Generate(f.schema, f.wl, gen),
      engine::EngineConfig{costmodel::HardwareProfile::DiskBased10G(), 0.0, 5},
      &f.model);
  auto a = partition::PartitioningState::Initial(&f.schema, &f.edges);
  auto b = a;
  schema::TableId lo = f.schema.TableIndex("lineorder");
  LPA_CHECK(b.PartitionBy(lo, f.schema.table(lo).ColumnIndex("lo_custkey")).ok());
  bool flip = false;
  for (auto _ : s) {
    benchmark::DoNotOptimize(cluster.ApplyDesign(flip ? a : b));
    flip = !flip;
  }
}
BENCHMARK(BM_RepartitionFactTable);

void BM_SqlParseQuery(benchmark::State& s) {
  auto& f = Ssb();
  const std::string sql =
      "SELECT SUM(lo_payload) FROM lineorder l, customer c, supplier su, date d "
      "WHERE l.lo_custkey = c.c_custkey AND l.lo_suppkey = su.s_suppkey "
      "AND l.lo_orderdate = d.d_datekey AND c.c_region = 1 AND su.s_nation = 7 "
      "GROUP BY d.d_year ORDER BY d.d_year LIMIT 100";
  for (auto _ : s) {
    benchmark::DoNotOptimize(sql::ParseQuery(sql, f.schema, "bench"));
  }
}
BENCHMARK(BM_SqlParseQuery);

void BM_DdlParseSchema(benchmark::State& s) {
  const std::string ddl =
      "CREATE TABLE region (r_id INT PRIMARY KEY, r_name VARCHAR(32)) ROWS 50;"
      "CREATE TABLE product (p_id INT PRIMARY KEY, "
      "p_region INT REFERENCES region(r_id), p_category INT DISTINCT 40, "
      "p_name VARCHAR(80)) ROWS 2000000;"
      "CREATE TABLE sales (s_id BIGINT PRIMARY KEY, "
      "s_product INT REFERENCES product(p_id), s_amount DECIMAL(10,2)) "
      "FACT ROWS 400000000;";
  for (auto _ : s) {
    benchmark::DoNotOptimize(sql::ParseDdl(ddl));
  }
}
BENCHMARK(BM_DdlParseSchema);

void BM_ClassifyQueryInstance(benchmark::State& s) {
  auto& f = Ssb();
  advisor::QueryClassifier classifier(&f.wl);
  Rng rng(3);
  auto instance = workload::MakeParameterizedSsbInstance(f.wl, 6, 0.3, &rng);
  for (auto _ : s) {
    benchmark::DoNotOptimize(classifier.Classify(instance));
  }
}
BENCHMARK(BM_ClassifyQueryInstance);

}  // namespace
}  // namespace lpa

BENCHMARK_MAIN();
