// Component microbenchmarks (google-benchmark): throughput guardrails for
// the library's hot paths — cost-model planning, featurization, NN forward/
// train, engine execution, and data generation — plus three kernels run
// after the google benchmarks: a workload-cost kernel comparing full
// recompute against incremental delta costing (BENCH_micro_components.json),
// a storage kernel measuring encode/decode throughput and per-column
// compression (BENCH_storage.json), and an engine kernel measuring
// pool-parallel ExecuteWorkload scaling with bit-identity checks plus the
// compressed-storage footprint (BENCH_engine.json).

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <sstream>
#include <thread>

#include "advisor/serialization.h"
#include "advisor/workload_monitor.h"
#include "bench_common.h"
#include "costmodel/cost_model.h"
#include "costmodel/workload_cost_tracker.h"
#include "sql/ddl.h"
#include "sql/parser.h"
#include "engine/cluster.h"
#include "nn/mlp.h"
#include "partition/featurizer.h"
#include "rl/dqn.h"
#include "rl/offline_env.h"
#include "schema/catalogs.h"
#include "storage/database.h"
#include "storage/encoded_column.h"
#include "util/rng.h"
#include "workload/benchmarks.h"

namespace lpa {
namespace {

struct SsbFixture {
  SsbFixture()
      : schema(schema::MakeSsbSchema()),
        wl(workload::MakeSsbWorkload(schema)),
        edges(partition::EdgeSet::Extract(schema, wl)),
        model(&schema, costmodel::HardwareProfile::DiskBased10G()),
        state(partition::PartitioningState::Initial(&schema, &edges)) {}

  schema::Schema schema;
  workload::Workload wl;
  partition::EdgeSet edges;
  costmodel::CostModel model;
  partition::PartitioningState state;
};

SsbFixture& Ssb() {
  static SsbFixture fixture;
  return fixture;
}

void BM_CostModelPlanSsbQuery(benchmark::State& s) {
  auto& f = Ssb();
  const auto& q = f.wl.query(10);  // q4.1: all five tables
  for (auto _ : s) {
    benchmark::DoNotOptimize(f.model.QueryCost(q, f.state));
  }
}
BENCHMARK(BM_CostModelPlanSsbQuery);

void BM_CostModelPlanTpcdsQuery(benchmark::State& s) {
  static schema::Schema schema = schema::MakeTpcdsSchema();
  static workload::Workload wl = workload::MakeTpcdsWorkload(schema);
  static partition::EdgeSet edges = partition::EdgeSet::Extract(schema, wl);
  static costmodel::CostModel model(&schema,
                                    costmodel::HardwareProfile::DiskBased10G());
  static auto state = partition::PartitioningState::Initial(&schema, &edges);
  const auto& q = wl.query(53);  // 6-table demographic query
  for (auto _ : s) {
    benchmark::DoNotOptimize(model.QueryCost(q, state));
  }
}
BENCHMARK(BM_CostModelPlanTpcdsQuery);

void BM_FeaturizerEncodeState(benchmark::State& s) {
  auto& f = Ssb();
  partition::Featurizer featurizer(&f.schema, &f.edges, f.wl.num_queries());
  std::vector<double> freqs(static_cast<size_t>(f.wl.num_queries()), 1.0);
  for (auto _ : s) {
    benchmark::DoNotOptimize(featurizer.EncodeState(f.state, freqs));
  }
}
BENCHMARK(BM_FeaturizerEncodeState);

void BM_LegalActions(benchmark::State& s) {
  auto& f = Ssb();
  partition::ActionSpace actions(&f.schema, &f.edges);
  for (auto _ : s) {
    benchmark::DoNotOptimize(actions.LegalActions(f.state));
  }
}
BENCHMARK(BM_LegalActions);

void BM_MlpForward128x64(benchmark::State& s) {
  nn::MlpConfig config;
  config.input_dim = 64;
  config.hidden = {128, 64};
  config.output_dim = 32;
  nn::Mlp mlp(config);
  nn::Matrix x(32, 64, 0.1);
  for (auto _ : s) {
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
}
BENCHMARK(BM_MlpForward128x64);

void BM_DqnTrainStep(benchmark::State& s) {
  auto& f = Ssb();
  partition::ActionSpace actions(&f.schema, &f.edges);
  partition::Featurizer featurizer(&f.schema, &f.edges, f.wl.num_queries());
  rl::DqnConfig config;
  config.tmax = 16;
  rl::DqnAgent agent(&featurizer, &actions, config);
  std::vector<double> freqs(static_cast<size_t>(f.wl.num_queries()), 1.0);
  auto enc = featurizer.EncodeState(f.state, freqs);
  auto legal = actions.LegalActions(f.state);
  for (int i = 0; i < 64; ++i) {
    agent.Observe(rl::Transition{enc, legal[0], -1.0, enc, legal});
  }
  Rng rng(3);
  for (auto _ : s) {
    benchmark::DoNotOptimize(agent.TrainStep(&rng));
  }
}
BENCHMARK(BM_DqnTrainStep);

void BM_EngineExecuteQuery(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 2e-4;
  gen.seed = 5;
  static engine::ClusterDatabase cluster(
      storage::Database::Generate(f.schema, f.wl, gen),
      engine::EngineConfig{costmodel::HardwareProfile::DiskBased10G(), 0.0, 5},
      &f.model);
  cluster.ApplyDesign(f.state);
  const auto& q = f.wl.query(6);  // q3.1
  for (auto _ : s) {
    benchmark::DoNotOptimize(cluster.ExecuteQuery(q));
  }
}
BENCHMARK(BM_EngineExecuteQuery);

void BM_GenerateSsbDatabase(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 1e-4;
  gen.seed = 5;
  for (auto _ : s) {
    benchmark::DoNotOptimize(storage::Database::Generate(f.schema, f.wl, gen));
  }
}
BENCHMARK(BM_GenerateSsbDatabase);

void BM_RepartitionFactTable(benchmark::State& s) {
  auto& f = Ssb();
  storage::GenerationConfig gen;
  gen.fraction = 2e-4;
  gen.seed = 5;
  engine::ClusterDatabase cluster(
      storage::Database::Generate(f.schema, f.wl, gen),
      engine::EngineConfig{costmodel::HardwareProfile::DiskBased10G(), 0.0, 5},
      &f.model);
  auto a = partition::PartitioningState::Initial(&f.schema, &f.edges);
  auto b = a;
  schema::TableId lo = f.schema.TableIndex("lineorder");
  LPA_CHECK(b.PartitionBy(lo, f.schema.table(lo).ColumnIndex("lo_custkey")).ok());
  bool flip = false;
  for (auto _ : s) {
    benchmark::DoNotOptimize(cluster.ApplyDesign(flip ? a : b));
    flip = !flip;
  }
}
BENCHMARK(BM_RepartitionFactTable);

void BM_SqlParseQuery(benchmark::State& s) {
  auto& f = Ssb();
  const std::string sql =
      "SELECT SUM(lo_payload) FROM lineorder l, customer c, supplier su, date d "
      "WHERE l.lo_custkey = c.c_custkey AND l.lo_suppkey = su.s_suppkey "
      "AND l.lo_orderdate = d.d_datekey AND c.c_region = 1 AND su.s_nation = 7 "
      "GROUP BY d.d_year ORDER BY d.d_year LIMIT 100";
  for (auto _ : s) {
    benchmark::DoNotOptimize(sql::ParseQuery(sql, f.schema, "bench"));
  }
}
BENCHMARK(BM_SqlParseQuery);

void BM_DdlParseSchema(benchmark::State& s) {
  const std::string ddl =
      "CREATE TABLE region (r_id INT PRIMARY KEY, r_name VARCHAR(32)) ROWS 50;"
      "CREATE TABLE product (p_id INT PRIMARY KEY, "
      "p_region INT REFERENCES region(r_id), p_category INT DISTINCT 40, "
      "p_name VARCHAR(80)) ROWS 2000000;"
      "CREATE TABLE sales (s_id BIGINT PRIMARY KEY, "
      "s_product INT REFERENCES product(p_id), s_amount DECIMAL(10,2)) "
      "FACT ROWS 400000000;";
  for (auto _ : s) {
    benchmark::DoNotOptimize(sql::ParseDdl(ddl));
  }
}
BENCHMARK(BM_DdlParseSchema);

void BM_ClassifyQueryInstance(benchmark::State& s) {
  auto& f = Ssb();
  advisor::QueryClassifier classifier(&f.wl);
  Rng rng(3);
  auto instance = workload::MakeParameterizedSsbInstance(f.wl, 6, 0.3, &rng);
  for (auto _ : s) {
    benchmark::DoNotOptimize(classifier.Classify(instance));
  }
}
BENCHMARK(BM_ClassifyQueryInstance);

}  // namespace

// ---------------------------------------------------------------------------
// Workload-cost kernel: full recompute vs incremental delta costing.
//
// Replays one seeded random action walk through the offline environment twice
// — once pricing every step with WorkloadCost (what training did before the
// tracker) and once with a WorkloadCostTracker fed Action::AffectedTables
// hints — and reports cost-model cache probes per step, ns per step, and the
// digest of the per-step totals. The digests MUST match: the incremental path
// is bit-identical by contract.

void RunWorkloadCostKernel() {
  bench::BenchReport report("micro_components");
  report.set_seed(42);
  const int steps = std::max(32, 4096 / bench::BenchScale());
  report.Note("workload_cost_steps", std::to_string(steps));

  TablePrinter table(
      {"schema", "mode", "probes/step", "ns/step", "total digest"});
  for (const std::string& name : {std::string("ssb"), std::string("tpcch")}) {
    auto tb = bench::MakeTestbed(name, bench::EngineKind::kDiskBased,
                                 /*fraction=*/1e-4);
    partition::ActionSpace actions(tb.schema.get(), tb.edges.get());
    std::vector<double> freqs(
        static_cast<size_t>(tb.workload->num_queries()), 1.0);

    // One shared walk so both modes price the identical state sequence.
    std::vector<int> walk;
    {
      Rng rng(42);
      auto state = tb.Initial();
      for (int i = 0; i < steps; ++i) {
        auto legal = actions.LegalActions(state);
        int action = legal[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(legal.size()) - 1))];
        LPA_CHECK(actions.Apply(action, &state).ok());
        walk.push_back(action);
      }
    }

    auto run_mode = [&](bool incremental) {
      // Fresh env per mode: both start from a cold cost cache.
      rl::OfflineEnv env(tb.exact_model.get(), tb.workload.get());
      std::unique_ptr<costmodel::WorkloadCostTracker> tracker;
      if (incremental) {
        tracker = std::make_unique<costmodel::WorkloadCostTracker>(
            tb.workload.get(),
            [&env](int j, const partition::PartitioningState& s) {
              return env.QueryCost(j, s, 1.0);
            });
      }
      auto state = tb.Initial();
      std::vector<double> totals;
      totals.reserve(walk.size());
      size_t probes_before = env.evaluations();
      auto t0 = std::chrono::steady_clock::now();
      for (int action : walk) {
        LPA_CHECK(actions.Apply(action, &state).ok());
        totals.push_back(
            incremental
                ? tracker->EvaluateDelta(state, actions.AffectedTables(action),
                                         freqs)
                : env.WorkloadCost(state, freqs));
      }
      auto t1 = std::chrono::steady_clock::now();
      double ns_per_step =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          static_cast<double>(walk.size());
      double probes_per_step =
          static_cast<double>(env.evaluations() - probes_before) /
          static_cast<double>(walk.size());
      table.AddRow({name, incremental ? "incremental" : "full",
                    FormatDouble(probes_per_step, 2),
                    FormatDouble(ns_per_step, 0),
                    bench::RewardDigest(totals)});
      return totals;
    };

    auto full = run_mode(/*incremental=*/false);
    auto incr = run_mode(/*incremental=*/true);
    LPA_CHECK(full == incr);  // bit-identical totals, the tracker's contract
  }
  report.Table("Workload cost per training step: full recompute vs incremental",
               table);
}

// ---------------------------------------------------------------------------
// Storage kernel: encoding throughput and per-column compression.
//
// Part 1 times EncodedColumn encode/decode on synthetic columns shaped for
// each encoding (constant -> RLE, sorted -> FOR, low-cardinality -> Dict,
// random -> Plain) and reports MB/s over the *raw* byte volume plus the
// achieved compression ratio. Part 2 encodes every column of the SSB and
// TPC-CH testbed databases with the stats-driven chooser and reports the
// pick and ratio per column. Emits BENCH_storage.json.

void RunStorageKernel() {
  using storage::EncodedColumn;
  bench::BenchReport report("storage");
  report.set_seed(42);
  const size_t n =
      static_cast<size_t>(4 << 20) / static_cast<size_t>(bench::BenchScale());
  report.Note("storage_kernel_values", std::to_string(n));

  std::vector<std::pair<std::string, std::vector<int64_t>>> shapes;
  shapes.emplace_back("constant", std::vector<int64_t>(n, 42));
  {
    std::vector<int64_t> sorted(n);
    for (size_t i = 0; i < n; ++i) sorted[i] = 1000 + 3 * static_cast<int64_t>(i);
    shapes.emplace_back("sorted", std::move(sorted));
  }
  {
    Rng rng(42);
    std::vector<int64_t> lowcard(n);
    for (auto& v : lowcard) v = rng.UniformInt(0, 199) * 1'000'003;
    shapes.emplace_back("low-card", std::move(lowcard));
  }
  {
    std::vector<int64_t> random(n);
    for (size_t i = 0; i < n; ++i) {
      random[i] = static_cast<int64_t>(Hash64(i ^ 0xabcdef12345ULL));
    }
    shapes.emplace_back("random", std::move(random));
  }

  const double raw_mb = static_cast<double>(n) * 8.0 / (1024.0 * 1024.0);
  const int reps = 3;
  TablePrinter tput(
      {"shape", "encoding", "encode MB/s", "decode MB/s", "ratio"});
  for (const auto& [label, values] : shapes) {
    EncodedColumn col;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      col = EncodedColumn::Encode(values);
      benchmark::DoNotOptimize(col);
    }
    auto t1 = std::chrono::steady_clock::now();
    std::vector<int64_t> decoded;
    for (int r = 0; r < reps; ++r) {
      decoded = col.Decode();
      benchmark::DoNotOptimize(decoded);
    }
    auto t2 = std::chrono::steady_clock::now();
    LPA_CHECK(decoded == values);  // lossless, always
    auto mbps = [&](std::chrono::steady_clock::duration d) {
      double secs = std::chrono::duration<double>(d).count() / reps;
      return FormatDouble(raw_mb / secs, 0);
    };
    tput.AddRow({label, storage::EncodingName(col.encoding()), mbps(t1 - t0),
                 mbps(t2 - t1),
                 FormatDouble(static_cast<double>(col.raw_bytes()) /
                                  static_cast<double>(col.encoded_bytes()),
                              1) +
                     "x"});
  }
  report.Table("Encoding throughput (over raw bytes) and compression ratio",
               tput);

  TablePrinter cols({"column", "rows", "encoding", "raw KB", "enc KB", "ratio"});
  for (const std::string& name : {std::string("ssb"), std::string("tpcch")}) {
    const auto schema = name == "ssb" ? schema::MakeSsbSchema()
                                      : schema::MakeTpcchSchema();
    const auto wl = name == "ssb" ? workload::MakeSsbWorkload(schema)
                                  : workload::MakeTpcchWorkload(schema);
    storage::GenerationConfig gen;
    gen.fraction = bench::DefaultFraction(name);
    gen.small_table_threshold = 64;
    gen.seed = 42;
    auto db = storage::Database::Generate(schema, wl, gen);
    size_t total_raw = 0, total_enc = 0;
    for (schema::TableId t = 0; t < schema.num_tables(); ++t) {
      const auto& table = schema.table(t);
      const auto& data = db.table(t);
      for (schema::ColumnId c = 0;
           c < static_cast<schema::ColumnId>(table.columns.size()); ++c) {
        auto col = EncodedColumn::Encode(data.column(c));
        total_raw += col.raw_bytes();
        total_enc += col.encoded_bytes();
        cols.AddRow(
            {name + "." + table.name + "." + table.columns[c].name,
             std::to_string(col.size()),
             storage::EncodingName(col.encoding()),
             FormatDouble(static_cast<double>(col.raw_bytes()) / 1024.0, 1),
             FormatDouble(static_cast<double>(col.encoded_bytes()) / 1024.0, 1),
             FormatDouble(static_cast<double>(col.raw_bytes()) /
                              static_cast<double>(col.encoded_bytes()),
                          1) +
                 "x"});
      }
      auto rid_col = EncodedColumn::Encode(data.rids());
      total_raw += rid_col.raw_bytes();
      total_enc += rid_col.encoded_bytes();
    }
    double ratio =
        static_cast<double>(total_raw) / static_cast<double>(total_enc);
    cols.AddRow({name + " TOTAL (incl. rids)", "",
                 "", FormatDouble(static_cast<double>(total_raw) / 1024.0, 1),
                 FormatDouble(static_cast<double>(total_enc) / 1024.0, 1),
                 FormatDouble(ratio, 2) + "x"});
    report.Note(name + "_compression_ratio", FormatDouble(ratio, 3));
  }
  report.Table("Per-column compression (chooser picks, testbed data)", cols);
}

// ---------------------------------------------------------------------------
// Engine kernel: pool-parallel ExecuteWorkload vs the serial path.
//
// Runs the full SSB workload on the materialized cluster at 1/2/8 threads,
// reporting wall-clock per workload pass and the speedup over serial. The
// per-query seconds digests MUST match across thread counts: the parallel
// engine is bit-identical by contract (order-fixed merges, forked RNG-free
// noise). Emits BENCH_engine.json.

void RunEngineKernel() {
  bench::BenchReport report("engine");
  report.set_seed(42);
  report.set_schema("ssb");
  report.set_engine_profile(bench::EngineName(bench::EngineKind::kDiskBased));
  auto tb = bench::MakeTestbed("ssb", bench::EngineKind::kDiskBased,
                               bench::DefaultFraction("ssb"));
  tb.cluster->ApplyDesign(tb.Initial());
  const int reps = std::max(2, 16 / bench::BenchScale());
  report.Note("engine_kernel_reps", std::to_string(reps));

  // Compressed-storage footprint of the deployed testbed (docs/INTERNALS.md
  // §11). The pre-compression engine measured 268.433 ms/workload serial on
  // this kernel (ROADMAP.md); the encoded engine must not regress it.
  {
    double resident = static_cast<double>(tb.cluster->storage_resident_bytes());
    double raw = static_cast<double>(tb.cluster->storage_raw_bytes());
    report.Note("storage_bytes_resident", FormatDouble(resident, 0));
    report.Note("storage_bytes_raw", FormatDouble(raw, 0));
    report.Note("storage_compression_ratio", FormatDouble(raw / resident, 3));
    report.Note("serial_ms_pre_compression_baseline", "268.433");
  }

  auto& reg = telemetry::MetricsRegistry::Global();
  uint64_t probes0 = reg.GetCounter("engine.join_probes.count").value();

  TablePrinter table({"threads", "ms/workload", "speedup", "per-query digest"});
  double serial_ms = 0.0;
  std::string serial_digest;
  for (int threads : {1, 2, 8}) {
    EvalContext ctx(threads, 7);
    EvalContext* pctx = threads > 1 ? &ctx : nullptr;
    // One warm-up pass so every mode times execution, not planning (the plan
    // cache is shared across modes anyway).
    tb.cluster->ExecuteWorkload(*tb.workload, pctx);
    std::vector<double> per_query;
    for (int i = 0; i < tb.workload->num_queries(); ++i) {
      per_query.push_back(
          tb.cluster->ExecuteQuery(tb.workload->query(i), pctx).seconds);
    }
    std::string digest = bench::RewardDigest(per_query);
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      benchmark::DoNotOptimize(tb.cluster->ExecuteWorkload(*tb.workload, pctx));
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()) /
        1000.0 / static_cast<double>(reps);
    if (threads == 1) {
      serial_ms = ms;
      serial_digest = digest;
      report.Note("serial_ms_per_workload", FormatDouble(ms, 3));
    }
    LPA_CHECK(digest == serial_digest);  // parallel must not change results
    table.AddRow({std::to_string(threads), FormatDouble(ms, 2),
                  FormatDouble(serial_ms / ms, 2) + "x", digest});
  }
  report.Table(
      "Engine kernel: ExecuteWorkload wall-clock vs threads "
      "(digests must be identical)",
      table);
  report.Note("join_probes",
              std::to_string(
                  reg.GetCounter("engine.join_probes.count").value() - probes0));
  report.Note(
      "plan_cache_hits",
      std::to_string(reg.GetCounter("engine.plan_cache_hits.count").value()));

  // Exchange-pricing sweep: the same testbed with price_encoded_bytes ships
  // measured encoded bytes instead of logical row widths. This intentionally
  // re-prices net_seconds / bytes_shuffled, so its digest is a *fresh
  // baseline* (recorded here), never compared against the raw-priced one.
  {
    auto priced = bench::MakeTestbed("ssb", bench::EngineKind::kDiskBased,
                                     bench::DefaultFraction("ssb"), 42, 0.02,
                                     /*encode_storage=*/true,
                                     /*price_encoded_bytes=*/true);
    priced.cluster->ApplyDesign(priced.Initial());
    TablePrinter pricing(
        {"pricing", "bytes shuffled", "simulated s", "per-query digest"});
    auto sweep = [&](engine::ClusterDatabase& cluster, const char* label) {
      uint64_t bytes = 0;
      double secs = 0.0;
      std::vector<double> per_query;
      for (int i = 0; i < tb.workload->num_queries(); ++i) {
        auto stats = cluster.ExecuteQuery(tb.workload->query(i));
        bytes += stats.bytes_shuffled;
        secs += stats.seconds;
        per_query.push_back(stats.seconds);
      }
      pricing.AddRow({label, std::to_string(bytes), FormatDouble(secs, 4),
                      bench::RewardDigest(per_query)});
      return bytes;
    };
    uint64_t raw_priced = sweep(*tb.cluster, "logical widths");
    uint64_t enc_priced = sweep(*priced.cluster, "encoded bytes");
    LPA_CHECK(enc_priced < raw_priced);  // compression must shrink exchanges
    report.Table(
        "Exchange pricing: logical row widths vs measured encoded bytes",
        pricing);
  }

  // Compression headroom: an encoded testbed materialized at 3x the fraction
  // still fits under the *uncompressed* testbed's resident footprint — the
  // same memory budget now holds a larger scale-factor slice.
  {
    auto plain = bench::MakeTestbed("ssb", bench::EngineKind::kDiskBased,
                                    bench::DefaultFraction("ssb"), 42, 0.02,
                                    /*encode_storage=*/false);
    auto big = bench::MakeTestbed("ssb", bench::EngineKind::kDiskBased,
                                  3.0 * bench::DefaultFraction("ssb"));
    plain.cluster->ApplyDesign(plain.Initial());
    big.cluster->ApplyDesign(big.Initial());
    schema::TableId lo = tb.schema->TableIndex("lineorder");
    auto mb = [](size_t bytes) {
      return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
    };
    TablePrinter headroom(
        {"testbed", "fraction", "lineorder rows", "resident MB", "raw MB"});
    headroom.AddRow({"plain", FormatDouble(bench::DefaultFraction("ssb"), 4),
                     std::to_string(plain.cluster->TableRows(lo)),
                     mb(plain.cluster->storage_resident_bytes()),
                     mb(plain.cluster->storage_raw_bytes())});
    headroom.AddRow({"encoded 3x",
                     FormatDouble(3.0 * bench::DefaultFraction("ssb"), 4),
                     std::to_string(big.cluster->TableRows(lo)),
                     mb(big.cluster->storage_resident_bytes()),
                     mb(big.cluster->storage_raw_bytes())});
    LPA_CHECK(big.cluster->storage_resident_bytes() <
              plain.cluster->storage_resident_bytes());
    report.Note("headroom_3x_fits", "true");
    report.Table(
        "Compression headroom: 3x materialized fraction vs plain footprint",
        headroom);
  }
}

// ---------------------------------------------------------------------------
// Training kernel: the actor/learner pipeline at 1/2/8 threads.
//
// Fixed 8 actor slots; in deterministic mode the run digests — episode
// rewards AND the final serialized agent weights — MUST be bit-identical at
// every thread count (the slot count, never the thread count, fixes the
// episode mapping, RNG streams, and shard-merge order). Also records the
// fast (work-stealing) mode and the new training-throughput gauges. Emits
// BENCH_training.json.

void RunTrainingKernel() {
  bench::BenchReport report("training");
  report.set_seed(42);
  report.set_schema("micro");
  report.set_engine_profile(bench::EngineName(bench::EngineKind::kInMemory));
  auto tb = bench::MakeTestbed("micro", bench::EngineKind::kInMemory,
                               bench::DefaultFraction("micro"));

  const int slots = 8;
  const int episodes = std::max(2 * slots, bench::Scaled(64));
  report.Note("actor_slots", std::to_string(slots));
  report.Note("episodes", std::to_string(episodes));
  // Worker-count sweeps on few-core hosts cannot show throughput scaling;
  // the sweep is kept for its bit-identity checks, which hold at any core
  // count.
  report.Note("scaling_waiver",
              "training speedup not asserted: " +
                  std::to_string(std::thread::hardware_concurrency()) +
                  " hardware thread(s); deterministic-mode digest equality "
                  "asserted instead");

  auto train = [&](int threads, rl::ActorLearnerConfig::Mode mode,
                   rl::TrainingResult* out, std::string* weights) {
    advisor::AdvisorConfig config;
    config.offline_episodes = episodes;
    config.dqn.tmax = 16;
    config.dqn.FitEpsilonSchedule(episodes);
    config.seed = 42;
    advisor::PartitioningAdvisor advisor(tb.schema.get(), *tb.workload,
                                         config);
    EvalContext ctx(threads, 7);
    rl::ActorLearnerConfig al;
    al.num_actors = slots;
    al.mode = mode;
    auto t0 = std::chrono::steady_clock::now();
    *out = advisor.TrainOffline(tb.exact_model.get(), al, nullptr, &ctx);
    auto t1 = std::chrono::steady_clock::now();
    std::ostringstream os;
    LPA_CHECK(advisor::SaveAgentSnapshot(*advisor.agent(), os).ok());
    *weights = os.str();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  auto weight_digest = [](const std::string& snapshot) {
    std::ostringstream os;
    os << std::hex << std::hash<std::string>{}(snapshot);
    return os.str();
  };

  TablePrinter table({"threads", "mode", "sec", "train steps", "steps/sec",
                      "reward digest", "weight digest"});
  std::string base_rewards, base_weights;
  double serial_secs = 0.0;
  for (int threads : {1, 2, 8}) {
    rl::TrainingResult result;
    std::string weights;
    double secs = train(threads, rl::ActorLearnerConfig::Mode::kDeterministic,
                        &result, &weights);
    std::string rd = bench::RewardDigest(result.episode_best_rewards);
    std::string wd = weight_digest(weights);
    if (threads == 1) {
      base_rewards = rd;
      base_weights = wd;
      serial_secs = secs;
      report.Note("deterministic_serial_sec", FormatDouble(secs, 3));
    }
    // The determinism contract: same slots, any thread count, same run.
    LPA_CHECK(rd == base_rewards);
    LPA_CHECK(wd == base_weights);
    table.AddRow({std::to_string(threads), "deterministic",
                  FormatDouble(secs, 3), std::to_string(result.train_steps),
                  FormatDouble(static_cast<double>(result.train_steps) / secs,
                               1),
                  rd, wd});
  }
  report.Note("deterministic_digests_identical", "true");
  {
    rl::TrainingResult result;
    std::string weights;
    double secs = train(8, rl::ActorLearnerConfig::Mode::kFast, &result,
                        &weights);
    table.AddRow({"8", "fast", FormatDouble(secs, 3),
                  std::to_string(result.train_steps),
                  FormatDouble(static_cast<double>(result.train_steps) / secs,
                               1),
                  bench::RewardDigest(result.episode_best_rewards),
                  weight_digest(weights)});
    report.Note("fast_mode_sec", FormatDouble(secs, 3));
    report.Note("fast_vs_serial_speedup", FormatDouble(serial_secs / secs, 2));
  }
  report.Table(
      "Actor/learner kernel: 8 slots at 1/2/8 threads (deterministic-mode "
      "digests must be identical; fast mode has no digest contract)",
      table);

  // Training-throughput gauges + the replay-shard depth histogram, as left
  // by the last run above.
  auto& reg = telemetry::MetricsRegistry::Global();
  report.Note("rl_train_steps_per_sec",
              FormatDouble(
                  reg.GetGauge("rl.train_steps_per_sec.value").value(), 1));
  report.Note("rl_actor_utilization",
              FormatDouble(reg.GetGauge("rl.actor_utilization.value").value(),
                           3));
  {
    auto& depth = reg.GetHistogram(
        "rl.replay_shard_depth",
        {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
    TablePrinter shard({"bucket <=", "count"});
    std::vector<uint64_t> counts = depth.bucket_counts();
    for (size_t i = 0; i < depth.bounds().size(); ++i) {
      if (counts[i] > 0) {
        shard.AddRow({FormatDouble(depth.bounds()[i], 0),
                      std::to_string(counts[i])});
      }
    }
    if (counts.size() > depth.bounds().size() &&
        counts[depth.bounds().size()] > 0) {
      shard.AddRow({"inf", std::to_string(counts[depth.bounds().size()])});
    }
    report.Note("replay_shard_depth_observations",
                std::to_string(depth.count()));
    report.Note("replay_shard_depth_mean", FormatDouble(depth.mean(), 2));
    report.Table("Replay shard depth at drain time (observations per shard "
                 "per drain)",
                 shard);
  }
}

}  // namespace lpa

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpa::RunWorkloadCostKernel();
  lpa::RunStorageKernel();
  lpa::RunEngineKernel();
  lpa::RunTrainingKernel();
  return 0;
}
