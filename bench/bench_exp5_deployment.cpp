// Exp 5 (Fig 8a/8b): adaptivity to the deployment. On the microbenchmark
// schema (fact A, dimensions B and C with C >> B), the question is whether
// to replicate or partition B. With a 10 Gbps interconnect, partitioning
// wins (the scan of B is distributed); at 0.6 Gbps, replication wins (no
// shuffle). On weaker compute nodes the benefit of replication shrinks.
// A DRL agent retrained per deployment should pick the winner every time.

#include <iostream>

#include "bench/bench_common.h"

namespace lpa::bench {
namespace {

struct Deployment {
  const char* label;
  costmodel::HardwareProfile profile;
};

void RunPanel(const char* title, const std::vector<Deployment>& deployments,
              BenchReport* report) {
  TablePrinter panel({"deployment", "B replicated", "B partitioned",
                      "RL (retrained)", "RL matches winner?"});
  for (const auto& deployment : deployments) {
    // Build a dedicated testbed on this hardware.
    Testbed tb = MakeTestbed("micro", EngineKind::kInMemory,
                             DefaultFraction("micro"));
    // Swap in the deployment's profile everywhere.
    tb.exact_model = std::make_unique<costmodel::CostModel>(
        tb.schema.get(), deployment.profile);
    tb.planner_model = std::make_unique<costmodel::NoisyOptimizerModel>(
        tb.schema.get(), deployment.profile, 0.05, 43, false);
    storage::GenerationConfig gen;
    gen.fraction = DefaultFraction("micro");
    gen.small_table_threshold = 64;
    gen.seed = 42;
    engine::EngineConfig engine_config;
    engine_config.hardware = deployment.profile;
    engine_config.seed = 42;
    tb.cluster = std::make_unique<engine::ClusterDatabase>(
        storage::Database::Generate(*tb.schema, *tb.workload, gen),
        engine_config, tb.planner_model.get());
    tb.workload->SetUniformFrequencies();

    // The two hand-built designs of Fig 8: A co-partitioned with C always.
    schema::TableId a = tb.schema->TableIndex("A");
    schema::TableId b = tb.schema->TableIndex("B");
    schema::TableId c = tb.schema->TableIndex("C");
    auto base = tb.Initial();
    LPA_CHECK(base.PartitionBy(a, tb.schema->table(a).ColumnIndex("a_c_id")).ok());
    LPA_CHECK(base.PartitionBy(c, tb.schema->table(c).ColumnIndex("c_id")).ok());
    auto b_replicated = base;
    LPA_CHECK(b_replicated.Replicate(b).ok());
    auto b_partitioned = base;
    LPA_CHECK(
        b_partitioned.PartitionBy(b, tb.schema->table(b).ColumnIndex("b_id")).ok());

    // Retrain the advisor for this deployment (Sec 7.6).
    auto advisor = TrainOfflineAdvisor(tb, 400, 8, /*seed=*/7);
    std::vector<double> uniform(2, 1.0);
    auto rl = advisor->Suggest(uniform);

    // Fig 8 reports the query affected by the B decision (A join B).
    const auto& q_ab = tb.workload->query(0);
    auto measure = [&](const partition::PartitioningState& d) {
      tb.cluster->ApplyDesign(d);
      return tb.cluster->ExecuteQuery(q_ab).seconds;
    };
    double t_rep = measure(b_replicated);
    double t_part = measure(b_partitioned);
    double t_rl = measure(rl.best_state);
    // Fig 8 reports speedups over the slowest approach.
    double slowest = std::max({t_rep, t_part, t_rl});
    bool matches = t_rl <= std::min(t_rep, t_part) * 1.03;
    panel.AddRow({deployment.label,
                  FormatDouble(slowest / t_rep, 2) + "x",
                  FormatDouble(slowest / t_part, 2) + "x",
                  FormatDouble(slowest / t_rl, 2) + "x",
                  matches ? "yes" : "no"});
  }
  report->Table(std::string(title) +
                    " (speedup over the slowest approach; higher is better)",
                panel);
}

void Main() {
  using costmodel::HardwareProfile;
  BenchReport report("exp5_deployment");
  report.set_seed(7);
  report.set_schema("micro");
  report.set_engine_profile(EngineName(EngineKind::kInMemory));
  RunPanel("Exp 5 / Fig 8a: standard hardware",
           {{"10 Gbps", HardwareProfile::InMemory10G()},
            {"0.6 Gbps", HardwareProfile::InMemory06G()}},
           &report);
  RunPanel("Exp 5 / Fig 8b: slower compute nodes",
           {{"10 Gbps", HardwareProfile::SlowerCompute10G()},
            {"0.6 Gbps",
             HardwareProfile::SlowerCompute10G().WithBandwidthGbps(0.6)}},
           &report);
}

}  // namespace
}  // namespace lpa::bench

int main() { lpa::bench::Main(); }
