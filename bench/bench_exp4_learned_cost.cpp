// Exp 4 (Fig 7a/7b): DRL vs the learned-neural-cost-model alternative.
// Both are bootstrapped offline on the simple cost model and refined online
// with the SAME (simulated) cluster-time budget; the cost-model baseline
// comes in an exploitation-driven and an exploration-driven variant.
// (TPC-CH, disk-based engine.)

#include <iostream>

#include "baselines/learned_cost.h"
#include "bench/bench_common.h"
#include "rl/online_env.h"

namespace lpa::bench {
namespace {

std::unique_ptr<engine::ClusterDatabase> MakeSample(const Testbed& tb) {
  storage::GenerationConfig gen;
  gen.fraction = DefaultFraction("tpcch");
  gen.small_table_threshold = 64;
  gen.seed = 42;
  engine::EngineConfig config;
  config.hardware = ProfileFor(EngineKind::kDiskBased);
  config.seed = 43;
  return std::make_unique<engine::ClusterDatabase>(
      storage::Database::Generate(*tb.schema, *tb.workload, gen)
          .Sample(0.2, 64, 7),
      config, tb.planner_model.get());
}

void Main() {
  BenchReport report("exp4_learned_cost");
  report.set_seed(42);
  report.set_schema("tpcch");
  report.set_engine_profile(EngineName(EngineKind::kDiskBased));
  Testbed tb =
      MakeTestbed("tpcch", EngineKind::kDiskBased, DefaultFraction("tpcch"));
  tb.workload->SetUniformFrequencies();
  const int m = tb.workload->num_queries();
  std::vector<double> uniform(static_cast<size_t>(m), 1.0);

  // --- RL: offline + online -------------------------------------------
  auto rl = TrainOfflineAdvisor(tb, 1200, 36);
  auto rl_offline_design = rl->Suggest(uniform).best_state;
  auto rl_sample = MakeSample(tb);
  rl::OnlineEnv rl_env(rl_sample.get(), &rl->workload(), {},
                       rl::OnlineEnvOptions{});
  rl->mutable_config().online_episodes = Scaled(600);
  rl->TrainOnline(&rl_env);
  auto rl_online_design = rl->Suggest(uniform, &rl_env).best_state;
  const double budget = rl_env.accounting().total_seconds();

  // --- Learned cost model, same online budget ---------------------------
  // Both variants are trained once and reused for Fig 7a and Fig 7b.
  partition::Featurizer featurizer(tb.schema.get(), tb.edges.get(), m);
  auto make_learned = [&](bool explore) {
    baselines::LearnedCostConfig config;
    // Match the RL agent's offline data volume: episodes x tmax pairs.
    config.offline_minibatches =
        std::max(100, Scaled(1200) * 36 / config.batch_size);
    config.seed = explore ? 11 : 12;
    auto learned = std::make_unique<baselines::LearnedCostAdvisor>(
        tb.schema.get(), tb.edges.get(), tb.workload.get(), &featurizer,
        config);
    Rng rng(config.seed);
    learned->TrainOffline(*tb.exact_model, &rng);
    auto sample = MakeSample(tb);
    rl::OnlineEnv env(sample.get(), tb.workload.get(), {},
                      rl::OnlineEnvOptions{});
    int iterations = learned->TrainOnline(&env, budget, explore, &rng);
    std::cout << (explore ? "explore" : "exploit") << " variant: " << iterations
              << " online iterations, "
              << learned->distinct_partitionings_observed()
              << " distinct partitionings measured\n";
    return learned;
  };
  auto exploit = make_learned(false);
  auto explore = make_learned(true);
  auto learned_exploit_design = exploit->Suggest(uniform);
  auto learned_explore_design = explore->Suggest(uniform);
  std::cout << "RL online: " << rl_env.accounting().queries_executed
            << " query executions across training\n";

  // --- Fig 7a ------------------------------------------------------------
  TablePrinter fig7a({"approach", "workload runtime", "vs RL online"});
  double t_rl_online = tb.Measure(rl_online_design);
  auto add = [&](const char* name, const partition::PartitioningState& d) {
    double t = tb.Measure(d);
    fig7a.AddRow({name, Secs(t), FormatDouble(t / t_rl_online, 2) + "x"});
  };
  add("RL (offline)", rl_offline_design);
  fig7a.AddRow({"RL online", Secs(t_rl_online), "1.00x"});
  add("Learned Costs (Exploit)", learned_exploit_design);
  add("Learned Costs (Explore)", learned_explore_design);
  report.Table("Exp 4 / Fig 7a: RL vs learned neural cost models (TPC-CH)",
               fig7a);

  // --- Fig 7b: adaptivity accuracy over workload clusters A and B --------
  std::vector<int> boosted;
  {
    schema::TableId stock = tb.schema->TableIndex("stock");
    schema::TableId item = tb.schema->TableIndex("item");
    for (int i = 0; i < m; ++i) {
      const auto& q = tb.workload->query(i);
      if (q.References(stock) && q.References(item)) boosted.push_back(i);
    }
  }
  const int kTrials = std::max(6, 24 / BenchScale());
  TablePrinter fig7b({"approach", "Workload A", "Workload B"});
  std::vector<std::vector<int>> correct(3, std::vector<int>(2, 0));
  for (int cluster = 0; cluster < 2; ++cluster) {
    Rng rng(700 + static_cast<uint64_t>(cluster));
    for (int trial = 0; trial < kTrials; ++trial) {
      auto freqs = cluster == 0
                       ? workload::SampleUniformFrequencies(m, &rng)
                       : workload::SampleBoostedFrequencies(m, boosted, &rng);
      std::vector<partition::PartitioningState> designs{
          rl->Suggest(freqs, &rl_env).best_state, exploit->Suggest(freqs),
          explore->Suggest(freqs)};
      LPA_CHECK(tb.workload->SetFrequencies(freqs).ok());
      double best = 1e300;
      std::vector<double> runtime;
      for (const auto& d : designs) {
        runtime.push_back(tb.Measure(d));
        best = std::min(best, runtime.back());
      }
      for (size_t a = 0; a < designs.size(); ++a) {
        if (runtime[a] <= best * 1.02) ++correct[a][static_cast<size_t>(cluster)];
      }
    }
  }
  const char* kNames[] = {"RL (online)", "Learned Costs (Exploit)",
                          "Learned Costs (Explore)"};
  for (int a = 0; a < 3; ++a) {
    fig7b.AddRow({kNames[a],
                  FormatDouble(100.0 * correct[static_cast<size_t>(a)][0] /
                                   kTrials, 0) + "%",
                  FormatDouble(100.0 * correct[static_cast<size_t>(a)][1] /
                                   kTrials, 0) + "%"});
  }
  report.Table(
      "Exp 4 / Fig 7b: adaptivity to unseen mixes (share of mixes with the "
      "best partitioning found)",
      fig7b);
}

}  // namespace
}  // namespace lpa::bench

int main() { lpa::bench::Main(); }
