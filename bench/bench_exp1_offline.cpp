// Exp 1 (Fig 3 a-f): workload runtime of the partitionings suggested by
// Heuristic (a), Heuristic (b), the Minimum-Optimizer designer, and the
// offline-trained DRL advisor, on SSB / TPC-DS / TPC-CH for both engine
// profiles. Absolute seconds are simulated on the scaled-down testbed; the
// paper-relevant signal is the ordering and the relative factors.

#include <iostream>

#include "bench/bench_common.h"

namespace lpa::bench {
namespace {

struct Scenario {
  const char* name;
  int episodes;  // 600 for SSB, 1200 for TPC-DS / TPC-CH (Table 1)
  int tmax;
};

void RunScenario(const Scenario& scenario, EngineKind kind,
                 TablePrinter* summary) {
  Testbed tb = MakeTestbed(scenario.name, kind, DefaultFraction(scenario.name));
  tb.workload->SetUniformFrequencies();

  auto heuristic_a = baselines::HeuristicA(*tb.schema, *tb.workload, *tb.edges);
  auto heuristic_b = baselines::HeuristicB(*tb.schema, *tb.workload, *tb.edges);
  baselines::OptimizerDesignerConfig designer;
  designer.random_restarts = 2;
  auto min_optimizer = baselines::MinimizeOptimizerCost(
      *tb.schema, *tb.workload, *tb.edges, *tb.noisy_model, designer);

  auto advisor = TrainOfflineAdvisor(tb, scenario.episodes, scenario.tmax);
  std::vector<double> uniform(
      static_cast<size_t>(tb.workload->num_queries()), 1.0);
  auto rl = advisor->Suggest(uniform);

  double t_a = tb.Measure(heuristic_a);
  double t_b = tb.Measure(heuristic_b);
  double t_opt = tb.Measure(min_optimizer);
  double t_rl = tb.Measure(rl.best_state);

  summary->AddRow({scenario.name, EngineName(kind), Secs(t_a), Secs(t_b),
                   Secs(t_opt), Secs(t_rl),
                   FormatDouble(std::min({t_a, t_b, t_opt}) / t_rl, 2) + "x"});

  std::cout << "[" << scenario.name << " / " << EngineName(kind)
            << "] RL design: " << rl.best_state.PhysicalDesignKey() << "\n";
}

void Main() {
  const Scenario kScenarios[] = {
      {"ssb", 600, 20},
      {"tpcds", 1200, 48},
      {"tpcch", 1200, 36},
  };
  BenchReport report("exp1_offline");
  report.set_seed(42);
  report.set_schema("ssb,tpcds,tpcch");
  report.set_engine_profile("disk-based + in-memory");
  TablePrinter summary({"schema", "engine", "Heuristic (a)", "Heuristic (b)",
                        "Minimum Optimizer", "RL (offline)",
                        "best-baseline / RL"});
  for (const auto& scenario : kScenarios) {
    RunScenario(scenario, EngineKind::kDiskBased, &summary);
    RunScenario(scenario, EngineKind::kInMemory, &summary);
  }
  report.Table(
      "Exp 1 / Fig 3: offline RL vs baselines (workload runtime, "
      "simulated seconds; scaled-down testbed)",
      summary);
}

}  // namespace
}  // namespace lpa::bench

int main() { lpa::bench::Main(); }
