// Exp 1 (Fig 3 a-f): workload runtime of the partitionings suggested by
// Heuristic (a), Heuristic (b), the Minimum-Optimizer designer, and the
// offline-trained DRL advisor, on SSB / TPC-DS / TPC-CH for both engine
// profiles. Absolute seconds are simulated on the scaled-down testbed; the
// paper-relevant signal is the ordering and the relative factors.
//
//   $ bench_exp1_offline [--threads N] [--seed N]
//
// --threads > 1 runs the six (schema, engine) scenarios concurrently on the
// parallel evaluation engine and additionally parallelizes each scenario's
// per-step evaluation + Q-network updates. Every scenario trains on its own
// child context whose seed depends only on (base seed, scenario index), so
// the printed reward digests are bit-identical at every --threads value.

#include <iostream>
#include <sstream>

#include "bench/bench_common.h"
#include "util/cli.h"

namespace lpa::bench {
namespace {

struct Scenario {
  const char* name;
  EngineKind kind;
  int episodes;  // 600 for SSB, 1200 for TPC-DS / TPC-CH (Table 1)
  int tmax;
};

struct ScenarioResult {
  std::vector<std::string> summary_row;
  std::string log;
};

ScenarioResult RunScenario(const Scenario& scenario, EvalContext* ctx) {
  ScenarioResult out;
  std::ostringstream log;
  Testbed tb = MakeTestbed(scenario.name, scenario.kind,
                           DefaultFraction(scenario.name));
  tb.workload->SetUniformFrequencies();

  auto heuristic_a = baselines::HeuristicA(*tb.schema, *tb.workload, *tb.edges);
  auto heuristic_b = baselines::HeuristicB(*tb.schema, *tb.workload, *tb.edges);
  baselines::OptimizerDesignerConfig designer;
  designer.random_restarts = 2;
  auto min_optimizer = baselines::MinimizeOptimizerCost(
      *tb.schema, *tb.workload, *tb.edges, *tb.noisy_model, designer);

  advisor::AdvisorConfig config;
  config.offline_episodes = Scaled(scenario.episodes);
  config.dqn.tmax = scenario.tmax;
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  advisor::PartitioningAdvisor advisor(tb.schema.get(), *tb.workload, config);
  auto training = advisor.TrainOffline(tb.exact_model.get(), nullptr, ctx);

  std::vector<double> uniform(
      static_cast<size_t>(tb.workload->num_queries()), 1.0);
  auto rl = advisor.Suggest(uniform, ctx);

  double t_a = tb.Measure(heuristic_a);
  double t_b = tb.Measure(heuristic_b);
  double t_opt = tb.Measure(min_optimizer);
  double t_rl = tb.Measure(rl.best_state);

  out.summary_row = {scenario.name,
                     EngineName(scenario.kind),
                     Secs(t_a),
                     Secs(t_b),
                     Secs(t_opt),
                     Secs(t_rl),
                     FormatDouble(std::min({t_a, t_b, t_opt}) / t_rl, 2) + "x",
                     RewardDigest(training.episode_best_rewards)};

  log << "[" << scenario.name << " / " << EngineName(scenario.kind)
      << "] RL design: " << rl.best_state.PhysicalDesignKey() << "\n";
  out.log = log.str();
  return out;
}

int Main(int argc, char** argv) {
  cli::CommonOptions common;
  cli::FlagParser parser;
  common.Register(&parser);
  std::string error;
  if (!parser.Parse(argc, argv, &error) || !common.Validate(&error)) {
    std::cerr << error << "\n" << parser.Usage(argv[0]);
    return 2;
  }

  const Scenario kScenarios[] = {
      {"ssb", EngineKind::kDiskBased, 600, 20},
      {"ssb", EngineKind::kInMemory, 600, 20},
      {"tpcds", EngineKind::kDiskBased, 1200, 48},
      {"tpcds", EngineKind::kInMemory, 1200, 48},
      {"tpcch", EngineKind::kDiskBased, 1200, 36},
      {"tpcch", EngineKind::kInMemory, 1200, 36},
  };
  constexpr size_t kNumScenarios = sizeof(kScenarios) / sizeof(kScenarios[0]);

  BenchReport report("exp1_offline");
  report.set_seed(common.seed);
  report.set_schema("ssb,tpcds,tpcch");
  report.set_engine_profile("disk-based + in-memory");
  report.Note("threads", std::to_string(common.threads));
  TablePrinter summary({"schema", "engine", "Heuristic (a)", "Heuristic (b)",
                        "Minimum Optimizer", "RL (offline)",
                        "best-baseline / RL", "reward digest"});

  // One owning context; each scenario trains on a child context borrowing
  // the same pool. Child seeds depend only on (base seed, scenario index),
  // never on completion order, so results match the serial run exactly.
  EvalContext root(common.threads, common.seed);
  std::vector<ScenarioResult> results(kNumScenarios);
  auto run_one = [&](size_t i) {
    EvalContext child(root.pool(),
                      HashCombine(common.seed, static_cast<uint64_t>(i)));
    results[i] = RunScenario(kScenarios[i], &child);
  };
  if (root.pool() != nullptr) {
    root.pool()->ParallelForEach(kNumScenarios, 1, run_one);
  } else {
    for (size_t i = 0; i < kNumScenarios; ++i) run_one(i);
  }

  for (const auto& result : results) {
    std::cout << result.log;
    summary.AddRow(result.summary_row);
  }
  report.Table(
      "Exp 1 / Fig 3: offline RL vs baselines (workload runtime, "
      "simulated seconds; scaled-down testbed)",
      summary);
  return 0;
}

}  // namespace
}  // namespace lpa::bench

int main(int argc, char** argv) { return lpa::bench::Main(argc, argv); }
