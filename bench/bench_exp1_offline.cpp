// Exp 1 (Fig 3 a-f): workload runtime of the partitionings suggested by
// Heuristic (a), Heuristic (b), the Minimum-Optimizer hill climber, the
// bounded-suboptimality DP designer (src/search/), and the offline-trained
// DRL advisor, on SSB / TPC-DS / TPC-CH for both engine profiles. Absolute
// seconds are simulated on the scaled-down testbed; the paper-relevant
// signal is the ordering and the relative factors.
//
//   $ bench_exp1_offline [--threads N] [--seed N] [--baseline all|dp]
//                        [--epsilon E] [--epsilon-sweep]
//
// Besides the Fig 3 table the bench self-verifies the search subsystem and
// exits non-zero on violation:
//  - on the micro schema the DP designer's cost is checked against full
//    enumeration: exactly equal at ε = 0, within (1+ε) otherwise, with the
//    certified lower bound below the optimum (an ε sweep table shows the
//    pruning/merging behaviour);
//  - a pruned Suggest (SuggestOptions::prune_rollouts, ε = 0) must return
//    the bit-identical design as the unpruned one at 1, 2, and 8 threads
//    while skipping Q-network forward passes (rl.actions_pruned > 0, fewer
//    rl.q_evals).
//
// --baseline dp runs only those verification sections (the check.sh smoke);
// --threads > 1 runs the six (schema, engine) scenarios concurrently with
// per-scenario child seeds, so the printed digests are bit-identical at
// every --threads value. Wall-clock columns are informational only: the
// 1-CPU CI container cannot assert latency or scaling (see the
// scaling_waiver manifest note).

#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>

#include "baselines/dp_baseline.h"
#include "bench/bench_common.h"
#include "search/dp_designer.h"
#include "util/cli.h"

namespace lpa::bench {
namespace {

double TimedSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

std::string FpHex(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf);
}

std::string DesignDigest(const partition::PartitioningState& s) {
  return FpHex(s.DesignFingerprint());
}

uint64_t CounterValue(const char* name) {
  return telemetry::MetricsRegistry::Global().GetCounter(name).value();
}

struct Scenario {
  const char* name;
  EngineKind kind;
  int episodes;  // 600 for SSB, 1200 for TPC-DS / TPC-CH (Table 1)
  int tmax;
};

struct ScenarioResult {
  std::vector<std::string> summary_row;
  /// One row per baseline: design wall-clock + design digest (+ notes).
  std::vector<std::vector<std::string>> baseline_rows;
  std::string log;
};

ScenarioResult RunScenario(const Scenario& scenario, double dp_epsilon,
                           EvalContext* ctx) {
  ScenarioResult out;
  std::ostringstream log;
  Testbed tb = MakeTestbed(scenario.name, scenario.kind,
                           DefaultFraction(scenario.name));
  tb.workload->SetUniformFrequencies();

  partition::PartitioningState heuristic_a = tb.Initial();
  partition::PartitioningState heuristic_b = tb.Initial();
  partition::PartitioningState min_optimizer = tb.Initial();
  double s_a = TimedSeconds([&] {
    heuristic_a = baselines::HeuristicA(*tb.schema, *tb.workload, *tb.edges);
  });
  double s_b = TimedSeconds([&] {
    heuristic_b = baselines::HeuristicB(*tb.schema, *tb.workload, *tb.edges);
  });
  double s_opt = TimedSeconds([&] {
    baselines::OptimizerDesignerConfig designer;
    designer.random_restarts = 2;
    min_optimizer = baselines::MinimizeOptimizerCost(
        *tb.schema, *tb.workload, *tb.edges, *tb.noisy_model, designer);
  });

  // Bounded-suboptimality DP against the exact model (the "modern search,
  // accurate estimates" anchor). Large schemas run beam-limited — the
  // certificate column records whether the (1+ε) bound still holds.
  search::DpDesignerConfig dp_config;
  dp_config.epsilon = dp_epsilon;
  if (tb.schema->num_tables() > 8) {
    dp_config.max_frontier = 128;
    dp_config.max_bound_enum = 512;
  }
  search::DpResult dp{tb.Initial()};
  double s_dp = TimedSeconds([&] {
    dp = baselines::DpDesign(*tb.schema, *tb.workload, *tb.edges,
                             *tb.exact_model, dp_config);
  });

  advisor::AdvisorConfig config;
  config.offline_episodes = Scaled(scenario.episodes);
  config.dqn.tmax = scenario.tmax;
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  advisor::PartitioningAdvisor advisor(tb.schema.get(), *tb.workload, config);
  rl::TrainingResult training;
  rl::InferenceResult rl{tb.Initial(), 0.0, {}};
  double s_rl = TimedSeconds([&] {
    training = advisor.TrainOffline(tb.exact_model.get(), nullptr, ctx);
    std::vector<double> uniform(
        static_cast<size_t>(tb.workload->num_queries()), 1.0);
    rl = advisor.Suggest(uniform, ctx);
  });

  double t_a = tb.Measure(heuristic_a);
  double t_b = tb.Measure(heuristic_b);
  double t_opt = tb.Measure(min_optimizer);
  double t_dp = tb.Measure(dp.best_state);
  double t_rl = tb.Measure(rl.best_state);

  out.summary_row = {scenario.name,
                     EngineName(scenario.kind),
                     Secs(t_a),
                     Secs(t_b),
                     Secs(t_opt),
                     Secs(t_dp),
                     Secs(t_rl),
                     FormatDouble(std::min({t_a, t_b, t_opt, t_dp}) / t_rl, 2) +
                         "x",
                     RewardDigest(training.episode_best_rewards)};

  auto row = [&](const char* baseline, double design_seconds,
                 const partition::PartitioningState& design,
                 const std::string& notes) {
    out.baseline_rows.push_back({scenario.name, EngineName(scenario.kind),
                                 baseline, Secs(design_seconds),
                                 DesignDigest(design), notes});
  };
  row("Heuristic (a)", s_a, heuristic_a, "");
  row("Heuristic (b)", s_b, heuristic_b, "");
  row("Minimum Optimizer", s_opt, min_optimizer, "hill climb, noisy estimates");
  {
    std::ostringstream notes;
    notes << "eps=" << FormatDouble(dp_epsilon, 2)
          << (dp.certified ? " certified" : " beam (certificate voided)")
          << ", expanded=" << dp.nodes_expanded << ", pruned="
          << dp.nodes_pruned << ", merged=" << dp.nodes_merged;
    row("DP (exact model)", s_dp, dp.best_state, notes.str());
  }
  row("RL (offline)", s_rl, rl.best_state,
      "train+suggest, reward digest " +
          RewardDigest(training.episode_best_rewards));

  log << "[" << scenario.name << " / " << EngineName(scenario.kind)
      << "] RL design: " << rl.best_state.PhysicalDesignKey() << "\n"
      << "[" << scenario.name << " / " << EngineName(scenario.kind)
      << "] DP design: " << dp.best_state.PhysicalDesignKey() << "\n";
  out.log = log.str();
  return out;
}

/// Micro-schema verification: DP vs full enumeration across an ε sweep.
/// Appends human-readable failure descriptions to `failures`.
void VerifyDpOnMicro(double epsilon, bool extended_sweep, uint64_t seed,
                     BenchReport* report,
                     std::vector<std::string>* failures) {
  Testbed tb =
      MakeTestbed("micro", EngineKind::kDiskBased, DefaultFraction("micro"),
                  seed);
  tb.workload->SetUniformFrequencies();
  const std::vector<double>& freqs = tb.workload->frequencies();
  auto query_cost = [&](int j, const partition::PartitioningState& s) {
    return tb.exact_model->QueryCost(tb.workload->query(j), s);
  };
  auto opt = search::ExhaustiveOptimum(*tb.schema, *tb.workload, *tb.edges,
                                       query_cost, freqs);
  if (!opt.has_value()) {
    failures->push_back("micro design space exceeded the enumeration cap");
    return;
  }
  std::cout << "\n[search] micro exhaustive optimum: cost "
            << FormatDouble(opt->second, 6) << ", design "
            << opt->first.PhysicalDesignKey() << "\n";

  std::vector<double> sweep = {0.0, epsilon};
  if (extended_sweep) sweep = {0.0, 0.02, 0.05, 0.1, 0.25, 0.5};
  TablePrinter table({"epsilon", "dp cost", "cost / opt", "certified LB",
                      "certified", "expanded", "pruned", "merged", "windows",
                      "design time"});
  for (double eps : sweep) {
    search::DpDesignerConfig dp_config;
    dp_config.epsilon = eps;
    search::DpResult dp{tb.Initial()};
    double seconds = TimedSeconds([&] {
      dp = baselines::DpDesign(*tb.schema, *tb.workload, *tb.edges,
                               *tb.exact_model, dp_config);
    });
    double ratio = dp.best_cost / opt->second;
    table.AddRow({FormatDouble(eps, 2), FormatDouble(dp.best_cost, 6),
                  FormatDouble(ratio, 6), FormatDouble(dp.certified_lower_bound, 6),
                  dp.certified ? "yes" : "no", std::to_string(dp.nodes_expanded),
                  std::to_string(dp.nodes_pruned),
                  std::to_string(dp.nodes_merged),
                  std::to_string(dp.cost_windows), Secs(seconds)});
    if (!dp.certified) {
      failures->push_back("micro DP at eps=" + FormatDouble(eps, 2) +
                          " lost its certificate (frontier overflow)");
    }
    if (dp.best_cost > (1.0 + eps) * opt->second * (1.0 + 1e-9)) {
      failures->push_back(
          "micro DP at eps=" + FormatDouble(eps, 2) + " returned cost " +
          FormatDouble(dp.best_cost, 6) + " > (1+eps) * optimum " +
          FormatDouble(opt->second, 6));
    }
    if (eps == 0.0 && dp.best_cost != opt->second) {
      failures->push_back("micro DP at eps=0 is not exactly optimal: " +
                          FormatDouble(dp.best_cost, 9) + " vs " +
                          FormatDouble(opt->second, 9));
    }
    if (dp.certified &&
        dp.certified_lower_bound > opt->second * (1.0 + 1e-9)) {
      failures->push_back("micro DP certified lower bound " +
                          FormatDouble(dp.certified_lower_bound, 6) +
                          " exceeds the optimum " +
                          FormatDouble(opt->second, 6));
    }
  }
  report->Table(
      "Design search verification: DP vs exhaustive enumeration (micro "
      "schema, exact cost model)",
      table);
}

/// Pruned vs unpruned Suggest at 1/2/8 threads: identical suggested design,
/// fewer Q-network forward passes, rl.actions_pruned > 0.
void VerifyPrunedSuggest(uint64_t seed, BenchReport* report,
                         std::vector<std::string>* failures) {
  Testbed tb =
      MakeTestbed("micro", EngineKind::kDiskBased, DefaultFraction("micro"),
                  seed);
  tb.workload->SetUniformFrequencies();

  advisor::AdvisorConfig config;
  config.offline_episodes = Scaled(120);
  config.dqn.tmax = 8;
  config.dqn.FitEpsilonSchedule(config.offline_episodes);
  config.seed = seed;
  advisor::PartitioningAdvisor advisor(tb.schema.get(), *tb.workload, config);
  {
    EvalContext train_ctx(/*threads=*/1, HashCombine(seed, 0x5ea9c4ULL));
    advisor.TrainOffline(tb.exact_model.get(), nullptr, &train_ctx);
  }
  std::vector<double> uniform(static_cast<size_t>(tb.workload->num_queries()),
                              1.0);

  TablePrinter table({"threads", "q_evals unpruned", "q_evals pruned",
                      "actions_pruned", "eval_prunes", "cutoffs",
                      "identical design"});
  std::string reference_digest;
  const int kThreadCounts[] = {1, 2, 8};
  for (int threads : kThreadCounts) {
    const uint64_t ctx_seed = HashCombine(seed, 0x517ULL);
    EvalContext unpruned_ctx(threads, ctx_seed);
    uint64_t q0 = CounterValue("rl.q_evals.count");
    auto unpruned = advisor.Suggest(uniform, &unpruned_ctx);
    uint64_t q_unpruned = CounterValue("rl.q_evals.count") - q0;

    EvalContext pruned_ctx(threads, ctx_seed);
    uint64_t q1 = CounterValue("rl.q_evals.count");
    uint64_t a1 = CounterValue("rl.actions_pruned.count");
    uint64_t e1 = CounterValue("rl.eval_prunes.count");
    uint64_t c1 = CounterValue("rl.rollout_cutoffs.count");
    advisor::SuggestOptions options;
    options.prune_rollouts = true;
    options.prune_epsilon = 0.0;
    auto pruned = advisor.Suggest(uniform, options, &pruned_ctx);
    uint64_t q_pruned = CounterValue("rl.q_evals.count") - q1;
    uint64_t actions_pruned = CounterValue("rl.actions_pruned.count") - a1;
    uint64_t eval_prunes = CounterValue("rl.eval_prunes.count") - e1;
    uint64_t cutoffs = CounterValue("rl.rollout_cutoffs.count") - c1;

    bool identical = pruned.best_state.SameDesign(unpruned.best_state) &&
                     pruned.best_cost == unpruned.best_cost &&
                     pruned.actions == unpruned.actions;
    table.AddRow({std::to_string(threads), std::to_string(q_unpruned),
                  std::to_string(q_pruned), std::to_string(actions_pruned),
                  std::to_string(eval_prunes), std::to_string(cutoffs),
                  identical ? "yes" : "NO"});

    std::string digest = DesignDigest(pruned.best_state);
    if (reference_digest.empty()) reference_digest = digest;
    if (!identical) {
      failures->push_back("pruned Suggest diverged from unpruned at " +
                          std::to_string(threads) + " threads");
    }
    if (digest != reference_digest) {
      failures->push_back("pruned Suggest design differs across thread "
                          "counts (" + std::to_string(threads) + " threads)");
    }
    if (actions_pruned == 0) {
      failures->push_back("pruned Suggest at " + std::to_string(threads) +
                          " threads pruned no actions (rl.actions_pruned)");
    }
    if (q_pruned >= q_unpruned) {
      failures->push_back("pruned Suggest at " + std::to_string(threads) +
                          " threads did not reduce Q evaluations (" +
                          std::to_string(q_pruned) + " vs " +
                          std::to_string(q_unpruned) + ")");
    }
  }
  report->Table(
      "Action-space pruning verification: pruned vs unpruned Suggest "
      "(micro schema, prune_epsilon=0; digests must match, wall-clock not "
      "asserted on the 1-CPU container)",
      table);
}

int Main(int argc, char** argv) {
  cli::CommonOptions common;
  cli::FlagParser parser;
  common.Register(&parser);
  std::string baseline_filter = "all";
  double epsilon = 0.1;
  bool epsilon_sweep = false;
  parser.AddString("baseline", "all = full Fig 3 run; dp = only the search "
                   "verification sections (fast smoke)", &baseline_filter);
  parser.AddDouble("epsilon", "DP suboptimality slack for the scenario runs "
                   "and the verification gate", &epsilon);
  parser.AddBool("epsilon-sweep", "extended epsilon sweep on the micro "
                 "verification", &epsilon_sweep);
  std::string error;
  if (!parser.Parse(argc, argv, &error) || !common.Validate(&error)) {
    std::cerr << error << "\n" << parser.Usage(argv[0]);
    return 2;
  }
  if (baseline_filter != "all" && baseline_filter != "dp") {
    std::cerr << "--baseline must be 'all' or 'dp'\n" << parser.Usage(argv[0]);
    return 2;
  }

  BenchReport report("exp1_offline");
  report.set_seed(common.seed);
  report.set_schema("ssb,tpcds,tpcch");
  report.set_engine_profile("disk-based + in-memory");
  report.Note("threads", std::to_string(common.threads));
  report.Note("baseline_filter", baseline_filter);
  report.Note("dp_epsilon", FormatDouble(epsilon, 3));
  report.Note("scaling_waiver",
              "1-CPU CI container: wall-clock and scaling informational "
              "only; gates assert digests and counters");

  std::vector<std::string> failures;
  VerifyDpOnMicro(epsilon, epsilon_sweep, common.seed, &report, &failures);
  VerifyPrunedSuggest(common.seed, &report, &failures);

  if (baseline_filter == "all") {
    const Scenario kScenarios[] = {
        {"ssb", EngineKind::kDiskBased, 600, 20},
        {"ssb", EngineKind::kInMemory, 600, 20},
        {"tpcds", EngineKind::kDiskBased, 1200, 48},
        {"tpcds", EngineKind::kInMemory, 1200, 48},
        {"tpcch", EngineKind::kDiskBased, 1200, 36},
        {"tpcch", EngineKind::kInMemory, 1200, 36},
    };
    constexpr size_t kNumScenarios =
        sizeof(kScenarios) / sizeof(kScenarios[0]);

    TablePrinter summary({"schema", "engine", "Heuristic (a)", "Heuristic (b)",
                          "Minimum Optimizer", "DP (exact)", "RL (offline)",
                          "best-baseline / RL", "reward digest"});
    TablePrinter baselines_table({"schema", "engine", "baseline",
                                  "design time", "design digest", "notes"});

    // One owning context; each scenario trains on a child context borrowing
    // the same pool. Child seeds depend only on (base seed, scenario index),
    // never on completion order, so results match the serial run exactly.
    EvalContext root(common.threads, common.seed);
    std::vector<ScenarioResult> results(kNumScenarios);
    auto run_one = [&](size_t i) {
      EvalContext child(root.pool(),
                        HashCombine(common.seed, static_cast<uint64_t>(i)));
      results[i] = RunScenario(kScenarios[i], epsilon, &child);
    };
    if (root.pool() != nullptr) {
      root.pool()->ParallelForEach(kNumScenarios, 1, run_one);
    } else {
      for (size_t i = 0; i < kNumScenarios; ++i) run_one(i);
    }

    for (const auto& result : results) {
      std::cout << result.log;
      summary.AddRow(result.summary_row);
      for (const auto& row : result.baseline_rows) {
        baselines_table.AddRow(row);
      }
    }
    report.Table(
        "Exp 1 / Fig 3: offline RL vs baselines (workload runtime, "
        "simulated seconds; scaled-down testbed)",
        summary);
    report.Table(
        "Per-baseline design wall-clock and design digests (wall-clock "
        "informational; digests stable across --threads)",
        baselines_table);
  }

  if (!failures.empty()) {
    std::cerr << "\nVERIFICATION FAILURES:\n";
    for (const auto& f : failures) std::cerr << "  - " << f << "\n";
    return 1;
  }
  std::cout << "\nAll search/pruning verification gates passed.\n";
  return 0;
}

}  // namespace
}  // namespace lpa::bench

int main(int argc, char** argv) { return lpa::bench::Main(argc, argv); }
