// Exp 3a (Fig 4b): robustness of the (not retrained) RL partitioning under
// bulk updates of +0% / +20% / +40% / +60% new data (TPC-CH, disk-based).
// After every bulk load the engine's optimizer statistics are refreshed,
// which flips some borderline plans — the mechanism behind the paper's
// "minimal optimizer" deterioration.

#include <iostream>

#include "bench/bench_common.h"
#include "rl/online_env.h"

namespace lpa::bench {
namespace {

void Main() {
  BenchReport report("exp3a_updates");
  report.set_seed(42);
  report.set_schema("tpcch");
  report.set_engine_profile(EngineName(EngineKind::kDiskBased));
  Testbed tb =
      MakeTestbed("tpcch", EngineKind::kDiskBased, DefaultFraction("tpcch"));
  tb.workload->SetUniformFrequencies();

  auto heuristic_a = baselines::HeuristicA(*tb.schema, *tb.workload, *tb.edges);
  auto heuristic_b = baselines::HeuristicB(*tb.schema, *tb.workload, *tb.edges);
  baselines::OptimizerDesignerConfig designer;
  designer.random_restarts = 4;
  auto min_optimizer = baselines::MinimizeOptimizerCost(
      *tb.schema, *tb.workload, *tb.edges, *tb.noisy_model, designer);
  auto advisor = TrainOfflineAdvisor(tb, 1200, 36);
  std::vector<double> uniform(static_cast<size_t>(tb.workload->num_queries()),
                              1.0);

  // Fig 4b uses the *online-trained* advisor: refine on a sampled copy.
  storage::GenerationConfig gen;
  gen.fraction = DefaultFraction("tpcch");
  gen.small_table_threshold = 64;
  gen.seed = 42;
  engine::EngineConfig engine_config;
  engine_config.hardware = ProfileFor(EngineKind::kDiskBased);
  engine_config.seed = 43;
  engine::ClusterDatabase sample(
      storage::Database::Generate(*tb.schema, *tb.workload, gen)
          .Sample(0.2, 64, 7),
      engine_config, tb.planner_model.get());
  rl::OnlineEnv online_env(&sample, &advisor->workload(), {},
                           rl::OnlineEnvOptions{});
  advisor->mutable_config().online_episodes = Scaled(600);
  advisor->TrainOnline(&online_env);
  auto rl = advisor->Suggest(uniform, &online_env);

  TablePrinter fig4b({"updates", "Heuristic (a)", "Heuristic (b)",
                      "Minimum Optimizer", "RL advisor", "RL best?"});
  double cumulative = 0.0;
  const double kSteps[] = {0.0, 0.2, 0.4, 0.6};
  for (size_t i = 0; i < 4; ++i) {
    if (kSteps[i] > 0.0) {
      // Bulk-load the delta relative to the ORIGINAL size: +20% increments.
      double delta = (kSteps[i] - cumulative) / (1.0 + cumulative);
      tb.cluster->BulkAppend(delta, 1000 + static_cast<uint64_t>(i));
      cumulative = kSteps[i];
      // ANALYZE refresh: the engine planner re-draws its borderline plans.
      tb.planner_model->set_stats_epoch(static_cast<int>(i));
    }
    double t_a = tb.Measure(heuristic_a);
    double t_b = tb.Measure(heuristic_b);
    double t_opt = tb.Measure(min_optimizer);
    double t_rl = tb.Measure(rl.best_state);
    // "Best" within the engine's +-2% measurement noise.
    bool rl_best = t_rl <= std::min({t_a, t_b, t_opt}) * 1.03;
    fig4b.AddRow({"+" + std::to_string(static_cast<int>(kSteps[i] * 100)) + "%",
                  Secs(t_a), Secs(t_b), Secs(t_opt), Secs(t_rl),
                  rl_best ? "yes" : "no"});
  }
  report.Table(
      "Exp 3a / Fig 4b: TPC-CH runtimes after bulk updates (no retraining)",
      fig4b);
}

}  // namespace
}  // namespace lpa::bench

int main() { lpa::bench::Main(); }
